#include "isa/isa.h"

#include <array>
#include <sstream>

namespace hltg {

Format format_of(Op op) {
  if (is_alu_r(op)) return Format::kR;
  if (op == Op::kJ || op == Op::kJal) return Format::kJ;
  return Format::kI;  // NOP encodes as all-zero R-type but is handled ad hoc
}

std::string_view mnemonic(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kAdd: return "add";
    case Op::kAddu: return "addu";
    case Op::kSub: return "sub";
    case Op::kSubu: return "subu";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kSll: return "sll";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kSeq: return "seq";
    case Op::kSne: return "sne";
    case Op::kAddi: return "addi";
    case Op::kAddui: return "addui";
    case Op::kSubi: return "subi";
    case Op::kSubui: return "subui";
    case Op::kAndi: return "andi";
    case Op::kOri: return "ori";
    case Op::kXori: return "xori";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kSlti: return "slti";
    case Op::kSltui: return "sltui";
    case Op::kSeqi: return "seqi";
    case Op::kSnei: return "snei";
    case Op::kLhi: return "lhi";
    case Op::kLb: return "lb";
    case Op::kLbu: return "lbu";
    case Op::kLh: return "lh";
    case Op::kLhu: return "lhu";
    case Op::kLw: return "lw";
    case Op::kSb: return "sb";
    case Op::kSh: return "sh";
    case Op::kSw: return "sw";
    case Op::kBeqz: return "beqz";
    case Op::kBnez: return "bnez";
    case Op::kJ: return "j";
    case Op::kJal: return "jal";
    case Op::kJr: return "jr";
    case Op::kJalr: return "jalr";
    default: return "?";
  }
}

Op op_from_mnemonic(std::string_view m) {
  for (int i = 0; i < kNumInstructions; ++i) {
    const Op op = static_cast<Op>(i);
    if (mnemonic(op) == m) return op;
  }
  return Op::kNumOps;
}

bool is_load(Op op) {
  switch (op) {
    case Op::kLb: case Op::kLbu: case Op::kLh: case Op::kLhu: case Op::kLw:
      return true;
    default:
      return false;
  }
}

bool is_store(Op op) {
  return op == Op::kSb || op == Op::kSh || op == Op::kSw;
}

bool is_branch(Op op) { return op == Op::kBeqz || op == Op::kBnez; }

bool is_jump(Op op) {
  return op == Op::kJ || op == Op::kJal || op == Op::kJr || op == Op::kJalr;
}

bool is_control(Op op) { return is_branch(op) || is_jump(op); }

bool is_alu_r(Op op) {
  switch (op) {
    case Op::kAdd: case Op::kAddu: case Op::kSub: case Op::kSubu:
    case Op::kAnd: case Op::kOr: case Op::kXor: case Op::kSll:
    case Op::kSrl: case Op::kSra: case Op::kSlt: case Op::kSltu:
    case Op::kSeq: case Op::kSne:
      return true;
    default:
      return false;
  }
}

bool is_alu_i(Op op) {
  switch (op) {
    case Op::kAddi: case Op::kAddui: case Op::kSubi: case Op::kSubui:
    case Op::kAndi: case Op::kOri: case Op::kXori: case Op::kSlli:
    case Op::kSrli: case Op::kSrai: case Op::kSlti: case Op::kSltui:
    case Op::kSeqi: case Op::kSnei: case Op::kLhi:
      return true;
    default:
      return false;
  }
}

bool reads_rs1(Op op) {
  if (op == Op::kNop || op == Op::kJ || op == Op::kJal || op == Op::kLhi)
    return false;
  return true;
}

bool reads_rs2(Op op) { return is_alu_r(op); }

bool reads_rd_as_source(Op op) { return is_store(op); }

bool writes_reg(const Instr& i, unsigned* dest_reg) {
  unsigned d = 0;
  bool w = false;
  if (is_alu_r(i.op) || is_alu_i(i.op) || is_load(i.op)) {
    d = i.rd;
    w = true;
  } else if (i.op == Op::kJal || i.op == Op::kJalr) {
    d = 31;
    w = true;
  }
  if (w && d == 0) w = false;  // R0 is hardwired to zero
  if (dest_reg) *dest_reg = d;
  return w;
}

bool zero_extends_imm(Op op) {
  switch (op) {
    case Op::kAddui: case Op::kSubui: case Op::kAndi: case Op::kOri:
    case Op::kXori: case Op::kSltui: case Op::kLhi:
      return true;
    default:
      return false;
  }
}

std::string to_string(const Instr& i) {
  std::ostringstream os;
  os << mnemonic(i.op);
  auto reg = [](unsigned r) { return "r" + std::to_string(r); };
  switch (i.op) {
    case Op::kNop:
      break;
    case Op::kJ:
    case Op::kJal:
      os << " " << i.imm;
      break;
    case Op::kJr:
    case Op::kJalr:
      os << " " << reg(i.rs1);
      break;
    case Op::kBeqz:
    case Op::kBnez:
      os << " " << reg(i.rs1) << ", " << i.imm;
      break;
    default:
      if (is_alu_r(i.op)) {
        os << " " << reg(i.rd) << ", " << reg(i.rs1) << ", " << reg(i.rs2);
      } else if (is_load(i.op)) {
        os << " " << reg(i.rd) << ", " << i.imm << "(" << reg(i.rs1) << ")";
      } else if (is_store(i.op)) {
        os << " " << i.imm << "(" << reg(i.rs1) << "), " << reg(i.rd);
      } else if (i.op == Op::kLhi) {
        os << " " << reg(i.rd) << ", " << i.imm;
      } else {  // I-type ALU
        os << " " << reg(i.rd) << ", " << reg(i.rs1) << ", " << i.imm;
      }
      break;
  }
  return os.str();
}

}  // namespace hltg
