// DLX instruction-set architecture (44 instructions).
//
// The paper's test vehicle "implements 44 instructions, has a five-stage
// pipeline and branch prediction logic" (Sec. VI). We implement the classic
// DLX subset from Hennessy & Patterson with exactly 44 instructions:
//
//   R-type ALU (14): ADD ADDU SUB SUBU AND OR XOR SLL SRL SRA SLT SLTU SEQ SNE
//   I-type ALU (15): ADDI ADDUI SUBI SUBUI ANDI ORI XORI SLLI SRLI SRAI
//                    SLTI SLTUI SEQI SNEI LHI
//   loads      (5):  LB LBU LH LHU LW
//   stores     (3):  SB SH SW
//   control    (6):  BEQZ BNEZ J JAL JR JALR
//   NOP        (1):  encoded as the all-zero word
//
// Encodings follow the DLX conventions:
//   I-type: op[31:26] rs1[25:21] rd[20:16] imm[15:0]
//   R-type: op=0      rs1[25:21] rs2[20:16] rd[15:11] 0[10:6] func[5:0]
//   J-type: op[31:26] offset[25:0]
// Any word that decodes to no defined instruction behaves as NOP (in both
// the specification simulator and the pipelined implementation), so the
// test generator may assign instruction bits freely.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hltg {

enum class Op : std::uint8_t {
  kNop = 0,
  // R-type ALU
  kAdd, kAddu, kSub, kSubu, kAnd, kOr, kXor, kSll, kSrl, kSra,
  kSlt, kSltu, kSeq, kSne,
  // I-type ALU
  kAddi, kAddui, kSubi, kSubui, kAndi, kOri, kXori, kSlli, kSrli, kSrai,
  kSlti, kSltui, kSeqi, kSnei, kLhi,
  // loads / stores
  kLb, kLbu, kLh, kLhu, kLw, kSb, kSh, kSw,
  // control transfer
  kBeqz, kBnez, kJ, kJal, kJr, kJalr,
  kNumOps,
};
constexpr int kNumInstructions = static_cast<int>(Op::kNumOps);  // == 44

enum class Format : std::uint8_t { kR, kI, kJ };

struct Instr {
  Op op = Op::kNop;
  unsigned rs1 = 0;  ///< [0,31]
  unsigned rs2 = 0;  ///< [0,31] (R-type only)
  unsigned rd = 0;   ///< [0,31] (destination; source for I-type stores)
  std::int32_t imm = 0;  ///< sign-extended 16-bit (26-bit for J-type)
};

Format format_of(Op op);
std::string_view mnemonic(Op op);
/// Op from mnemonic; kNumOps when unknown.
Op op_from_mnemonic(std::string_view m);

// --- static properties used by the spec simulator, the model builder and
// --- the test emitters -------------------------------------------------
bool is_load(Op op);
bool is_store(Op op);
bool is_branch(Op op);       ///< BEQZ/BNEZ
bool is_jump(Op op);         ///< J/JAL/JR/JALR
bool is_control(Op op);      ///< branch or jump
bool is_alu_r(Op op);
bool is_alu_i(Op op);
/// True if the instruction reads R[rs1].
bool reads_rs1(Op op);
/// True if the instruction reads R[rs2] (R-type operand).
bool reads_rs2(Op op);
/// True if the instruction reads the register named by its rd field
/// (I-type stores read the store datum from rd).
bool reads_rd_as_source(Op op);
/// True if the instruction writes a register; `dest_reg` gives the
/// architectural destination (31 for JAL/JALR).
bool writes_reg(const Instr& i, unsigned* dest_reg = nullptr);
/// Immediate variants that zero-extend imm16 instead of sign-extending.
bool zero_extends_imm(Op op);

std::string to_string(const Instr& i);

}  // namespace hltg
