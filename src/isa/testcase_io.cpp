#include "isa/testcase_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/disasm.h"
#include "util/word.h"

namespace hltg {

std::string serialize_test(const TestCase& tc) {
  std::ostringstream os;
  os << "# hltg verification test\n";
  for (std::size_t i = 0; i < tc.imem.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", tc.imem[i]);
    os << "instr " << buf << "   # " << to_hex(static_cast<std::uint32_t>(4 * i), 16)
       << ": " << disassemble(tc.imem[i]) << "\n";
  }
  for (unsigned r = 1; r < 32; ++r)
    if (tc.rf_init[r]) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x", tc.rf_init[r]);
      os << "reg " << r << " " << buf << "\n";
    }
  for (auto [a, v] : tc.dmem_init) {
    char ab[16], vb[16];
    std::snprintf(ab, sizeof ab, "%08x", a);
    std::snprintf(vb, sizeof vb, "%08x", v);
    os << "mem " << ab << " " << vb << "\n";
  }
  return os.str();
}

namespace {

/// Strict 32-bit hex field: only hex digits (optionally 0x-prefixed), at
/// most 8 of them. strtoul would silently accept junk ("zz" -> 0) or wrap
/// on overflow; untrusted files deserve a real parse.
bool parse_hex32(const std::string& tok, std::uint32_t* out) {
  std::size_t b = 0;
  if (tok.size() > 2 && tok[0] == '0' && (tok[1] == 'x' || tok[1] == 'X'))
    b = 2;
  if (tok.size() == b || tok.size() - b > 8) return false;
  std::uint32_t v = 0;
  for (std::size_t i = b; i < tok.size(); ++i) {
    const char c = tok[i];
    if (!std::isxdigit(static_cast<unsigned char>(c))) return false;
    v = v * 16 + static_cast<std::uint32_t>(
                     c <= '9' ? c - '0' : (c | 0x20) - 'a' + 10);
  }
  *out = v;
  return true;
}

/// Cap on program words: a malformed (or hostile) file must not balloon
/// the process before the simulator ever runs.
constexpr std::size_t kMaxTestWords = 1u << 20;

}  // namespace

TestLoadResult parse_test(const std::string& text) {
  TestLoadResult res;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    auto no_trailing = [&] {
      std::string extra;
      if (ls >> extra) {
        fail("trailing junk '" + extra + "'");
        return false;
      }
      return true;
    };
    if (kw == "instr") {
      std::string hex;
      std::uint32_t w = 0;
      if (!(ls >> hex) || !parse_hex32(hex, &w)) {
        fail("bad instruction word");
        return res;
      }
      if (!no_trailing()) return res;
      if (res.test.imem.size() >= kMaxTestWords) {
        fail("program exceeds " + std::to_string(kMaxTestWords) + " words");
        return res;
      }
      res.test.imem.push_back(w);
    } else if (kw == "reg") {
      unsigned r = 0;
      std::string hex;
      std::uint32_t v = 0;
      if (!(ls >> r >> hex) || r == 0 || r >= 32 || !parse_hex32(hex, &v)) {
        fail("bad reg line");
        return res;
      }
      if (!no_trailing()) return res;
      res.test.rf_init[r] = v;
    } else if (kw == "mem") {
      std::string ah, vh;
      std::uint32_t a = 0, v = 0;
      if (!(ls >> ah >> vh) || !parse_hex32(ah, &a) || !parse_hex32(vh, &v)) {
        fail("bad mem line");
        return res;
      }
      if (!no_trailing()) return res;
      res.test.dmem_init[a] = v;
    } else {
      fail("unknown keyword '" + kw + "'");
      return res;
    }
  }
  return res;
}

bool save_test(const TestCase& tc, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_test(tc);
  return static_cast<bool>(out);
}

TestLoadResult load_test(const std::string& path) {
  std::ifstream in(path);
  TestLoadResult res;
  if (!in) {
    res.error = "cannot open " + path;
    return res;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_test(ss.str());
}

}  // namespace hltg
