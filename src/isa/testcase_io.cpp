#include "isa/testcase_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "isa/disasm.h"
#include "util/word.h"

namespace hltg {

std::string serialize_test(const TestCase& tc) {
  std::ostringstream os;
  os << "# hltg verification test\n";
  for (std::size_t i = 0; i < tc.imem.size(); ++i) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08x", tc.imem[i]);
    os << "instr " << buf << "   # " << to_hex(static_cast<std::uint32_t>(4 * i), 16)
       << ": " << disassemble(tc.imem[i]) << "\n";
  }
  for (unsigned r = 1; r < 32; ++r)
    if (tc.rf_init[r]) {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%08x", tc.rf_init[r]);
      os << "reg " << r << " " << buf << "\n";
    }
  for (auto [a, v] : tc.dmem_init) {
    char ab[16], vb[16];
    std::snprintf(ab, sizeof ab, "%08x", a);
    std::snprintf(vb, sizeof vb, "%08x", v);
    os << "mem " << ab << " " << vb << "\n";
  }
  return os.str();
}

TestLoadResult parse_test(const std::string& text) {
  TestLoadResult res;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kw;
    if (!(ls >> kw)) continue;
    auto fail = [&](const std::string& msg) {
      res.error = "line " + std::to_string(lineno) + ": " + msg;
    };
    if (kw == "instr") {
      std::string hex;
      if (!(ls >> hex)) {
        fail("missing instruction word");
        return res;
      }
      res.test.imem.push_back(
          static_cast<std::uint32_t>(std::strtoul(hex.c_str(), nullptr, 16)));
    } else if (kw == "reg") {
      unsigned r = 0;
      std::string hex;
      if (!(ls >> r >> hex) || r >= 32) {
        fail("bad reg line");
        return res;
      }
      res.test.rf_init[r] =
          static_cast<std::uint32_t>(std::strtoul(hex.c_str(), nullptr, 16));
    } else if (kw == "mem") {
      std::string ah, vh;
      if (!(ls >> ah >> vh)) {
        fail("bad mem line");
        return res;
      }
      res.test.dmem_init[static_cast<std::uint32_t>(
          std::strtoul(ah.c_str(), nullptr, 16))] =
          static_cast<std::uint32_t>(std::strtoul(vh.c_str(), nullptr, 16));
    } else {
      fail("unknown keyword '" + kw + "'");
      return res;
    }
  }
  return res;
}

bool save_test(const TestCase& tc, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_test(tc);
  return static_cast<bool>(out);
}

TestLoadResult load_test(const std::string& path) {
  std::ifstream in(path);
  TestLoadResult res;
  if (!in) {
    res.error = "cannot open " + path;
    return res;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  return parse_test(ss.str());
}

}  // namespace hltg
