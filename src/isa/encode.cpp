#include "isa/encode.h"

#include "util/word.h"

namespace hltg {

unsigned opcode_of(Op op) {
  switch (op) {
    case Op::kAddi: return 0x08;
    case Op::kAddui: return 0x09;
    case Op::kSubi: return 0x0A;
    case Op::kSubui: return 0x0B;
    case Op::kAndi: return 0x0C;
    case Op::kOri: return 0x0D;
    case Op::kXori: return 0x0E;
    case Op::kLhi: return 0x0F;
    case Op::kSlli: return 0x14;
    case Op::kSrli: return 0x16;
    case Op::kSrai: return 0x17;
    case Op::kSeqi: return 0x18;
    case Op::kSnei: return 0x19;
    case Op::kSlti: return 0x1A;
    case Op::kSltui: return 0x1B;
    case Op::kLb: return 0x20;
    case Op::kLh: return 0x21;
    case Op::kLw: return 0x23;
    case Op::kLbu: return 0x24;
    case Op::kLhu: return 0x25;
    case Op::kSb: return 0x28;
    case Op::kSh: return 0x29;
    case Op::kSw: return 0x2B;
    case Op::kBeqz: return 0x04;
    case Op::kBnez: return 0x05;
    case Op::kJ: return 0x02;
    case Op::kJal: return 0x03;
    case Op::kJr: return 0x12;
    case Op::kJalr: return 0x13;
    default: return 0x00;  // R-type and NOP
  }
}

unsigned func_of(Op op) {
  switch (op) {
    case Op::kSll: return 0x04;
    case Op::kSrl: return 0x06;
    case Op::kSra: return 0x07;
    case Op::kAdd: return 0x20;
    case Op::kAddu: return 0x21;
    case Op::kSub: return 0x22;
    case Op::kSubu: return 0x23;
    case Op::kAnd: return 0x24;
    case Op::kOr: return 0x25;
    case Op::kXor: return 0x26;
    case Op::kSeq: return 0x28;
    case Op::kSne: return 0x29;
    case Op::kSlt: return 0x2A;
    case Op::kSltu: return 0x2B;
    default: return 0x00;
  }
}

std::uint32_t encode(const Instr& i) {
  std::uint64_t w = 0;
  switch (format_of(i.op)) {
    case Format::kR:
      if (i.op == Op::kNop) return 0;
      w = set_field(w, kOpcodeLo, kOpcodeW, 0);
      w = set_field(w, kRs1Lo, kRegW, i.rs1);
      w = set_field(w, kRs2Lo, kRegW, i.rs2);
      w = set_field(w, kRdRLo, kRegW, i.rd);
      w = set_field(w, kFuncLo, kFuncW, func_of(i.op));
      break;
    case Format::kI:
      if (i.op == Op::kNop) return 0;
      w = set_field(w, kOpcodeLo, kOpcodeW, opcode_of(i.op));
      w = set_field(w, kRs1Lo, kRegW, i.rs1);
      w = set_field(w, kRdILo, kRegW, i.rd);
      w = set_field(w, 0, kImmW, static_cast<std::uint32_t>(i.imm));
      break;
    case Format::kJ:
      w = set_field(w, kOpcodeLo, kOpcodeW, opcode_of(i.op));
      w = set_field(w, 0, kJImmW, static_cast<std::uint32_t>(i.imm));
      break;
  }
  return static_cast<std::uint32_t>(w);
}

namespace {

Op rtype_op_from_func(unsigned func) {
  switch (func) {
    case 0x04: return Op::kSll;
    case 0x06: return Op::kSrl;
    case 0x07: return Op::kSra;
    case 0x20: return Op::kAdd;
    case 0x21: return Op::kAddu;
    case 0x22: return Op::kSub;
    case 0x23: return Op::kSubu;
    case 0x24: return Op::kAnd;
    case 0x25: return Op::kOr;
    case 0x26: return Op::kXor;
    case 0x28: return Op::kSeq;
    case 0x29: return Op::kSne;
    case 0x2A: return Op::kSlt;
    case 0x2B: return Op::kSltu;
    default: return Op::kNop;
  }
}

Op itype_op_from_opcode(unsigned opc) {
  switch (opc) {
    case 0x08: return Op::kAddi;
    case 0x09: return Op::kAddui;
    case 0x0A: return Op::kSubi;
    case 0x0B: return Op::kSubui;
    case 0x0C: return Op::kAndi;
    case 0x0D: return Op::kOri;
    case 0x0E: return Op::kXori;
    case 0x0F: return Op::kLhi;
    case 0x14: return Op::kSlli;
    case 0x16: return Op::kSrli;
    case 0x17: return Op::kSrai;
    case 0x18: return Op::kSeqi;
    case 0x19: return Op::kSnei;
    case 0x1A: return Op::kSlti;
    case 0x1B: return Op::kSltui;
    case 0x20: return Op::kLb;
    case 0x21: return Op::kLh;
    case 0x23: return Op::kLw;
    case 0x24: return Op::kLbu;
    case 0x25: return Op::kLhu;
    case 0x28: return Op::kSb;
    case 0x29: return Op::kSh;
    case 0x2B: return Op::kSw;
    case 0x04: return Op::kBeqz;
    case 0x05: return Op::kBnez;
    case 0x12: return Op::kJr;
    case 0x13: return Op::kJalr;
    default: return Op::kNop;
  }
}

}  // namespace

Instr decode(std::uint32_t word) {
  Instr i;
  const unsigned opc =
      static_cast<unsigned>(get_field(word, kOpcodeLo, kOpcodeW));
  if (opc == 0x00) {
    const unsigned func =
        static_cast<unsigned>(get_field(word, kFuncLo, kFuncW));
    i.op = rtype_op_from_func(func);
    i.rs1 = static_cast<unsigned>(get_field(word, kRs1Lo, kRegW));
    i.rs2 = static_cast<unsigned>(get_field(word, kRs2Lo, kRegW));
    i.rd = static_cast<unsigned>(get_field(word, kRdRLo, kRegW));
    if (i.op == Op::kNop) i = Instr{};  // undefined func -> architectural NOP
    return i;
  }
  if (opc == 0x02 || opc == 0x03) {
    i.op = opc == 0x02 ? Op::kJ : Op::kJal;
    i.imm = static_cast<std::int32_t>(sext(get_field(word, 0, kJImmW), kJImmW));
    return i;
  }
  i.op = itype_op_from_opcode(opc);
  if (i.op == Op::kNop) return Instr{};  // undefined opcode -> NOP
  i.rs1 = static_cast<unsigned>(get_field(word, kRs1Lo, kRegW));
  i.rd = static_cast<unsigned>(get_field(word, kRdILo, kRegW));
  const std::uint64_t raw = get_field(word, 0, kImmW);
  i.imm = zero_extends_imm(i.op)
              ? static_cast<std::int32_t>(raw)
              : static_cast<std::int32_t>(sext(raw, kImmW));
  return i;
}

bool is_defined(std::uint32_t word) {
  if (word == 0) return true;  // canonical NOP
  const unsigned opc =
      static_cast<unsigned>(get_field(word, kOpcodeLo, kOpcodeW));
  if (opc == 0x00)
    return rtype_op_from_func(
               static_cast<unsigned>(get_field(word, kFuncLo, kFuncW))) !=
           Op::kNop;
  if (opc == 0x02 || opc == 0x03) return true;
  return itype_op_from_opcode(opc) != Op::kNop;
}

}  // namespace hltg
