// Binary encoding / decoding of DLX instructions.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/isa.h"

namespace hltg {

// Field positions (shared with the implementation model's decode logic).
constexpr unsigned kOpcodeLo = 26, kOpcodeW = 6;
constexpr unsigned kRs1Lo = 21, kRs2Lo = 16, kRdILo = 16, kRdRLo = 11;
constexpr unsigned kRegW = 5;
constexpr unsigned kImmW = 16, kJImmW = 26;
constexpr unsigned kFuncLo = 0, kFuncW = 6;

/// 6-bit primary opcode for an Op (0 for R-type / NOP).
unsigned opcode_of(Op op);
/// 6-bit function code for an R-type Op.
unsigned func_of(Op op);

std::uint32_t encode(const Instr& i);

/// Decode a word. Undefined encodings decode to NOP - this is an
/// architectural guarantee both the spec simulator and the pipelined
/// implementation provide, so the test generator may assign instruction bits
/// freely.
Instr decode(std::uint32_t word);

/// True if `word` encodes one of the 44 defined instructions (the all-zero
/// word counts as NOP; other undefined encodings return false).
bool is_defined(std::uint32_t word);

}  // namespace hltg
