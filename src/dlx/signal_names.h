// Debug / reporting helpers: human-readable inventories of the DLX model.
#pragma once

#include <string>

#include "dlx/dlx.h"

namespace hltg {

/// Multi-line inventory: datapath nets by stage/role, controller statistics,
/// CTRL/STS bindings. Used by examples and DESIGN.md verification.
std::string describe_model(const DlxModel& m);

/// Count datapath state bits (sum of register widths), excluding the
/// register file - the paper quotes this as 512 for its DLX.
unsigned datapath_state_bits(const Netlist& dp);

}  // namespace hltg
