// Gate-level controller of the pipelined DLX.
//
// The controller is a PLA-style decoder (one AND term per instruction over
// the 12 CPI bits opcode[5:0]/func[5:0], OR planes for each control bit)
// plus control pipe registers per stage and the global hazard logic (CG in
// Fig. 2): load-use stall, EX redirect/squash, and the bypass selects. The
// hazard logic consumes STS bits computed by datapath comparators.
#include "dlx/dlx.h"

#include <stdexcept>

#include "isa/encode.h"

namespace hltg {

DecodedCtrl decoded_ctrl(Op op) {
  DecodedCtrl c;
  auto alu_r = [&](AluSel a) {
    c.alu_sel = a;
    c.reads_rs1 = true;
    c.reads_rsB = true;
    c.wb_en = true;
    c.dest_sel = DestSel::kRdR;
  };
  auto alu_i = [&](AluSel a) {
    c.alu_sel = a;
    c.use_imm = true;
    c.reads_rs1 = true;
    c.wb_en = true;
    c.dest_sel = DestSel::kRdI;
    c.imm_sel = zero_extends_imm(op) ? ImmSel::kZext16 : ImmSel::kSext16;
  };
  auto load = [&](MemSize sz, LoadExt ext) {
    c.alu_sel = AluSel::kAdd;
    c.use_imm = true;
    c.reads_rs1 = true;
    c.wb_en = true;
    c.dest_sel = DestSel::kRdI;
    c.is_load = true;
    c.mem_size = sz;
    c.load_ext = ext;
  };
  auto store = [&](MemSize sz) {
    c.alu_sel = AluSel::kAdd;
    c.use_imm = true;
    c.reads_rs1 = true;
    c.reads_rsB = true;  // store datum from R[instr[20:16]]
    c.is_store = true;
    c.mem_size = sz;
  };
  switch (op) {
    case Op::kNop: break;
    case Op::kAdd: case Op::kAddu: alu_r(AluSel::kAdd); break;
    case Op::kSub: case Op::kSubu: alu_r(AluSel::kSub); break;
    case Op::kAnd: alu_r(AluSel::kAnd); break;
    case Op::kOr: alu_r(AluSel::kOr); break;
    case Op::kXor: alu_r(AluSel::kXor); break;
    case Op::kSll: alu_r(AluSel::kShl); break;
    case Op::kSrl: alu_r(AluSel::kSrl); break;
    case Op::kSra: alu_r(AluSel::kSra); break;
    case Op::kSlt: alu_r(AluSel::kSlt); break;
    case Op::kSltu: alu_r(AluSel::kSltu); break;
    case Op::kSeq: alu_r(AluSel::kSeq); break;
    case Op::kSne: alu_r(AluSel::kSne); break;
    case Op::kAddi: case Op::kAddui: alu_i(AluSel::kAdd); break;
    case Op::kSubi: case Op::kSubui: alu_i(AluSel::kSub); break;
    case Op::kAndi: alu_i(AluSel::kAnd); break;
    case Op::kOri: alu_i(AluSel::kOr); break;
    case Op::kXori: alu_i(AluSel::kXor); break;
    case Op::kSlli: alu_i(AluSel::kShl); break;
    case Op::kSrli: alu_i(AluSel::kSrl); break;
    case Op::kSrai: alu_i(AluSel::kSra); break;
    case Op::kSlti: alu_i(AluSel::kSlt); break;
    case Op::kSltui: alu_i(AluSel::kSltu); break;
    case Op::kSeqi: alu_i(AluSel::kSeq); break;
    case Op::kSnei: alu_i(AluSel::kSne); break;
    case Op::kLhi:
      alu_i(AluSel::kLhi);
      c.reads_rs1 = false;  // rd = imm << 16 only
      break;
    case Op::kLb: load(MemSize::kByte, LoadExt::kByteS); break;
    case Op::kLbu: load(MemSize::kByte, LoadExt::kByteU); break;
    case Op::kLh: load(MemSize::kHalf, LoadExt::kHalfS); break;
    case Op::kLhu: load(MemSize::kHalf, LoadExt::kHalfU); break;
    case Op::kLw: load(MemSize::kWord, LoadExt::kWord); break;
    case Op::kSb: store(MemSize::kByte); break;
    case Op::kSh: store(MemSize::kHalf); break;
    case Op::kSw: store(MemSize::kWord); break;
    case Op::kBeqz:
      c.reads_rs1 = true;
      c.use_imm = true;
      c.is_beqz = true;
      break;
    case Op::kBnez:
      c.reads_rs1 = true;
      c.use_imm = true;
      c.is_bnez = true;
      break;
    case Op::kJ:
      c.imm_sel = ImmSel::kSext26;
      c.is_jump = true;
      break;
    case Op::kJal:
      c.imm_sel = ImmSel::kSext26;
      c.is_jump = true;
      c.wb_en = true;
      c.dest_sel = DestSel::kR31;
      c.alu_sel = AluSel::kLink;
      break;
    case Op::kJr:
      c.reads_rs1 = true;
      c.is_jreg = true;
      break;
    case Op::kJalr:
      c.reads_rs1 = true;
      c.is_jreg = true;
      c.wb_en = true;
      c.dest_sel = DestSel::kR31;
      c.alu_sel = AluSel::kLink;
      break;
    default:
      throw std::logic_error("decoded_ctrl: bad op");
  }
  return c;
}

namespace {

/// OR-plane helper: one output bit = OR of the one-hot terms of all ops for
/// which `pred` yields a set bit.
GateId or_plane(GateBuilder& g, const std::string& name,
                const std::vector<GateId>& onehot,
                const std::vector<DecodedCtrl>& table, bool (*pred)(const DecodedCtrl&)) {
  std::vector<GateId> terms;
  for (int i = 0; i < kNumInstructions; ++i)
    if (pred(table[i])) terms.push_back(onehot[i]);
  return g.any(name, std::move(terms));
}

}  // namespace

void build_dlx_controller(DlxModel& m) {
  GateBuilder g(m.ctrl);

  // ---- CPI: opcode and func bits of the fetched instruction --------------
  g.set_stage(Stage::kIF);
  const GateVec op_if = g.var_vec("cpi.opcode", 6, SigRole::kCPI);
  const GateVec fn_if = g.var_vec("cpi.func", 6, SigRole::kCPI);
  m.cpi.clear();
  for (GateId b : op_if) m.cpi.push_back(b);
  for (GateId b : fn_if) m.cpi.push_back(b);

  // ---- STS variables -------------------------------------------------------
  auto sts = [&](const char* name, Stage st, NetId dp_net) {
    g.set_stage(st);
    const GateId v = g.var(name, SigRole::kSts);
    m.sts_binds.push_back({dp_net, v});
    return v;
  };
  const DlxSignals& s = m.sig;
  const bool bp = m.cfg.branch_predictor;
  const GateId v_a_zero = sts("sts.a_zero", Stage::kEX, s.s_a_zero);
  const GateId v_fwda_mem = sts("sts.fwda_mem", Stage::kEX, s.s_fwda_mem);
  const GateId v_fwdb_mem = sts("sts.fwdb_mem", Stage::kEX, s.s_fwdb_mem);
  const GateId v_fwda_wb = sts("sts.fwda_wb", Stage::kEX, s.s_fwda_wb);
  const GateId v_fwdb_wb = sts("sts.fwdb_wb", Stage::kEX, s.s_fwdb_wb);
  const GateId v_dest_mem_nz =
      sts("sts.dest_mem_nz", Stage::kEX, s.s_dest_mem_nz);
  const GateId v_dest_wb_nz = sts("sts.dest_wb_nz", Stage::kEX, s.s_dest_wb_nz);
  const GateId v_dest_ex_nz = sts("sts.dest_ex_nz", Stage::kID, s.s_dest_ex_nz);
  const GateId v_ld_rs1 = sts("sts.ld_rs1", Stage::kID, s.s_ld_rs1);
  const GateId v_ld_rsb = sts("sts.ld_rsb", Stage::kID, s.s_ld_rsb);
  const GateId v_btb_hit =
      bp ? sts("sts.btb_hit", Stage::kIF, s.s_btb_hit) : kNoGate;
  const GateId v_ptarget_eq =
      bp ? sts("sts.ptarget_eq", Stage::kEX, s.s_ptarget_eq) : kNoGate;
  const bool bypassing = m.cfg.bypassing;
  const GateId v_haz_rs1_mem =
      bypassing ? kNoGate : sts("sts.haz_rs1_mem", Stage::kID, s.s_haz_rs1_mem);
  const GateId v_haz_rsb_mem =
      bypassing ? kNoGate : sts("sts.haz_rsb_mem", Stage::kID, s.s_haz_rsb_mem);

  // ---- decode table --------------------------------------------------------
  std::vector<DecodedCtrl> table(kNumInstructions);
  for (int i = 0; i < kNumInstructions; ++i)
    table[i] = decoded_ctrl(static_cast<Op>(i));

  // The hazard signals are needed before the pipeline latches can be built;
  // declare placeholders wired up at the end via buffers is not possible
  // with this IR, so we build in dependency order instead:
  //  (1) IF/ID CPR needs stall/redirect -> but stall needs ID decode, which
  //      needs the IF/ID CPR outputs. We break the cycle the same way the
  //      hardware does: the IF/ID latch is a DFF (state), so its *output* is
  //      a source; only its enable/clear inputs come from later logic. The
  //      gate builder's dff_en_clr patches the D-side cone after creation,
  //      so we create the latches first with placeholder controls and patch.
  // To keep this readable we instead create stall/redirect as forward
  // OR-gates with empty fanin and patch their fanin at the end.
  Gate fwd_stall;
  fwd_stall.name = "cg.stall";
  fwd_stall.kind = GateKind::kOr;
  fwd_stall.stage = Stage::kID;
  fwd_stall.fanin = {g.const0(), g.const0()};  // patched below
  const GateId stall = m.ctrl.add_gate(std::move(fwd_stall));
  Gate fwd_redir;
  fwd_redir.name = "cg.redirect";
  fwd_redir.kind = GateKind::kOr;
  fwd_redir.stage = Stage::kEX;
  fwd_redir.fanin = {g.const0(), g.const0()};  // patched below
  const GateId redirect = m.ctrl.add_gate(std::move(fwd_redir));
  g.mark_tertiary(stall);
  g.mark_tertiary(redirect);

  // ---- IF/ID control pipe register: opcode/func latch ---------------------
  g.set_stage(Stage::kID);
  const GateId nstall = g.not_("cg.nstall", stall);
  GateVec op_id(6), fn_id(6);
  for (int i = 0; i < 6; ++i) {
    op_id[i] = g.dff_en_clr("cpr.ifid_op[" + std::to_string(i) + "]",
                            op_if[i], nstall, redirect);
    fn_id[i] = g.dff_en_clr("cpr.ifid_fn[" + std::to_string(i) + "]",
                            fn_if[i], nstall, redirect);
  }

  // ---- one-hot decode (ID) -------------------------------------------------
  GateVec bits12;
  for (GateId b : op_id) bits12.push_back(b);
  for (GateId b : fn_id) bits12.push_back(b);
  std::vector<GateId> onehot(kNumInstructions);
  for (int i = 0; i < kNumInstructions; ++i) {
    const Op op = static_cast<Op>(i);
    const std::string nm = std::string("dec.") + std::string(mnemonic(op));
    if (op == Op::kNop) {
      onehot[i] = g.const0();  // NOP asserts no control bit
    } else if (format_of(op) == Format::kR) {
      onehot[i] =
          g.eq_const(nm, bits12, (static_cast<std::uint64_t>(func_of(op)) << 6));
    } else {
      onehot[i] = g.eq_const(nm, op_id, opcode_of(op));
    }
  }
  // Note on bit order: bits12 = opcode[0..5] ++ func[0..5], so an R-type
  // term matches opcode == 0 and func == func_of(op); eq_const's value has
  // the func code shifted past the 6 opcode bits.

  auto plane = [&](const char* name, bool (*pred)(const DecodedCtrl&)) {
    return or_plane(g, name, onehot, table, pred);
  };
  auto plane_bit = [&](const char* name, unsigned bit,
                       unsigned (*field)(const DecodedCtrl&)) {
    std::vector<GateId> terms;
    for (int i = 0; i < kNumInstructions; ++i)
      if ((field(table[i]) >> bit) & 1u) terms.push_back(onehot[i]);
    return g.any(name, std::move(terms));
  };

  // ID-stage decoded control bits.
  const GateId d_use_imm =
      plane("dec.use_imm", [](const DecodedCtrl& c) { return c.use_imm; });
  const GateId d_wb_en =
      plane("dec.wb_en", [](const DecodedCtrl& c) { return c.wb_en; });
  const GateId d_reads_rs1 =
      plane("dec.reads_rs1", [](const DecodedCtrl& c) { return c.reads_rs1; });
  const GateId d_reads_rsb =
      plane("dec.reads_rsb", [](const DecodedCtrl& c) { return c.reads_rsB; });
  const GateId d_is_load =
      plane("dec.is_load", [](const DecodedCtrl& c) { return c.is_load; });
  const GateId d_is_store =
      plane("dec.is_store", [](const DecodedCtrl& c) { return c.is_store; });
  const GateId d_is_beqz =
      plane("dec.is_beqz", [](const DecodedCtrl& c) { return c.is_beqz; });
  const GateId d_is_bnez =
      plane("dec.is_bnez", [](const DecodedCtrl& c) { return c.is_bnez; });
  const GateId d_is_jump =
      plane("dec.is_jump", [](const DecodedCtrl& c) { return c.is_jump; });
  const GateId d_is_jreg =
      plane("dec.is_jreg", [](const DecodedCtrl& c) { return c.is_jreg; });
  GateVec d_alu_sel(kAluSelW), d_imm_sel(2), d_dest_sel(2), d_size(2),
      d_load_ext(3);
  for (unsigned bit = 0; bit < kAluSelW; ++bit)
    d_alu_sel[bit] =
        plane_bit(("dec.alu_sel" + std::to_string(bit)).c_str(), bit,
                  [](const DecodedCtrl& c) {
                    return static_cast<unsigned>(c.alu_sel);
                  });
  for (unsigned bit = 0; bit < 2; ++bit)
    d_imm_sel[bit] =
        plane_bit(("dec.imm_sel" + std::to_string(bit)).c_str(), bit,
                  [](const DecodedCtrl& c) {
                    return static_cast<unsigned>(c.imm_sel);
                  });
  for (unsigned bit = 0; bit < 2; ++bit)
    d_dest_sel[bit] =
        plane_bit(("dec.dest_sel" + std::to_string(bit)).c_str(), bit,
                  [](const DecodedCtrl& c) {
                    return static_cast<unsigned>(c.dest_sel);
                  });
  for (unsigned bit = 0; bit < 2; ++bit)
    d_size[bit] = plane_bit(("dec.size" + std::to_string(bit)).c_str(), bit,
                            [](const DecodedCtrl& c) {
                              return static_cast<unsigned>(c.mem_size);
                            });
  for (unsigned bit = 0; bit < 3; ++bit)
    d_load_ext[bit] =
        plane_bit(("dec.load_ext" + std::to_string(bit)).c_str(), bit,
                  [](const DecodedCtrl& c) {
                    return static_cast<unsigned>(c.load_ext);
                  });

  // ---- ID/EX control pipe registers ----------------------------------------
  g.set_stage(Stage::kEX);
  const GateId idex_clr = g.or_("cg.idex_clr", {stall, redirect});
  auto cpr_ex = [&](const char* name, GateId d) {
    return g.dff_en_clr(std::string("cpr.idex_") + name, d, kNoGate, idex_clr);
  };
  const GateId q_use_imm = cpr_ex("use_imm", d_use_imm);
  const GateId q_wb_en = cpr_ex("wb_en", d_wb_en);
  const GateId q_reads_rs1 = cpr_ex("reads_rs1", d_reads_rs1);
  const GateId q_reads_rsb = cpr_ex("reads_rsb", d_reads_rsb);
  const GateId q_is_load = cpr_ex("is_load", d_is_load);
  const GateId q_is_store = cpr_ex("is_store", d_is_store);
  const GateId q_is_beqz = cpr_ex("is_beqz", d_is_beqz);
  const GateId q_is_bnez = cpr_ex("is_bnez", d_is_bnez);
  const GateId q_is_jump = cpr_ex("is_jump", d_is_jump);
  const GateId q_is_jreg = cpr_ex("is_jreg", d_is_jreg);
  GateVec q_alu_sel(kAluSelW), q_size(2), q_load_ext(3);
  for (unsigned i = 0; i < kAluSelW; ++i)
    q_alu_sel[i] =
        cpr_ex(("alu_sel" + std::to_string(i)).c_str(), d_alu_sel[i]);
  for (unsigned i = 0; i < 2; ++i)
    q_size[i] = cpr_ex(("size" + std::to_string(i)).c_str(), d_size[i]);
  for (unsigned i = 0; i < 3; ++i)
    q_load_ext[i] =
        cpr_ex(("load_ext" + std::to_string(i)).c_str(), d_load_ext[i]);

  // ---- EX/MEM control pipe registers ---------------------------------------
  g.set_stage(Stage::kMEM);
  auto cpr_mem = [&](const char* name, GateId d) {
    return g.dff(std::string("cpr.exmem_") + name, d);
  };
  const GateId m_wb_en = cpr_mem("wb_en", q_wb_en);
  const GateId m_is_load = cpr_mem("is_load", q_is_load);
  const GateId m_is_store = cpr_mem("is_store", q_is_store);
  GateVec m_size(2), m_load_ext(3);
  for (unsigned i = 0; i < 2; ++i)
    m_size[i] = cpr_mem(("size" + std::to_string(i)).c_str(), q_size[i]);
  for (unsigned i = 0; i < 3; ++i)
    m_load_ext[i] =
        cpr_mem(("load_ext" + std::to_string(i)).c_str(), q_load_ext[i]);

  // ---- MEM/WB control pipe register -----------------------------------------
  g.set_stage(Stage::kWB);
  const GateId w_wb_en = g.dff("cpr.memwb_wb_en", m_wb_en);

  // ---- CG: redirect (EX) ------------------------------------------------------
  g.set_stage(Stage::kEX);
  const GateId n_a_zero = g.not_("cg.n_a_zero", v_a_zero);
  const GateId taken_beqz = g.and_("cg.taken_beqz", {q_is_beqz, v_a_zero});
  const GateId taken_bnez = g.and_("cg.taken_bnez", {q_is_bnez, n_a_zero});
  const GateId actual_taken = g.or_(
      "cg.actual_taken", {taken_beqz, taken_bnez, q_is_jump, q_is_jreg});
  GateId pt_if = kNoGate, pt_ex = kNoGate;
  if (!bp) {
    // Predict-not-taken: every actually-taken transfer redirects.
    m.ctrl.gate(redirect).kind = GateKind::kBuf;
    m.ctrl.gate(redirect).fanin = {actual_taken};
  } else {
    // Predict-taken-on-BTB-hit: the prediction bit travels with the
    // instruction; EX redirects only on a mispredicted direction or target.
    g.set_stage(Stage::kIF);
    pt_if = g.buf("cg.pred_taken_if", v_btb_hit);
    g.mark_tertiary(pt_if);
    g.set_stage(Stage::kID);
    const GateId nstall_pt = g.not_("cg.nstall_pt", stall);
    const GateId pt_id =
        g.dff_en_clr("cpr.ifid_pred_taken", pt_if, nstall_pt, redirect);
    g.set_stage(Stage::kEX);
    pt_ex = g.dff_en_clr("cpr.idex_pred_taken", pt_id, kNoGate, idex_clr);
    const GateId wrong_dir = g.xor_("cg.wrong_dir", pt_ex, actual_taken);
    const GateId n_teq = g.not_("cg.n_ptarget_eq", v_ptarget_eq);
    const GateId wrong_tgt =
        g.and_("cg.wrong_tgt", {actual_taken, pt_ex, n_teq});
    m.ctrl.gate(redirect).fanin = {wrong_dir, wrong_tgt};
  }
  m.ctrl.invalidate();

  // ---- CG: interlock stall (ID) ------------------------------------------------
  g.set_stage(Stage::kID);
  const GateId dep_rs1 = g.and_("cg.dep_rs1", {v_ld_rs1, d_reads_rs1});
  const GateId dep_rsb = g.and_("cg.dep_rsb", {v_ld_rsb, d_reads_rsb});
  const GateId dep_any = g.or_("cg.dep_any", {dep_rs1, dep_rsb});
  const GateId n_redirect = g.not_("cg.n_redirect", redirect);
  GateId stall_term;
  if (bypassing) {
    // With a full bypass network only the load-use case needs a stall.
    stall_term =
        g.and_("cg.stall_t", {q_is_load, v_dest_ex_nz, dep_any, n_redirect});
  } else {
    // Interlock-only: stall against ANY register-writing producer in EX or
    // MEM; write-through covers the WB case.
    const GateId haz_ex =
        g.and_("cg.haz_ex", {q_wb_en, v_dest_ex_nz, dep_any});
    const GateId dep_rs1_m =
        g.and_("cg.dep_rs1_m", {v_haz_rs1_mem, d_reads_rs1});
    const GateId dep_rsb_m =
        g.and_("cg.dep_rsb_m", {v_haz_rsb_mem, d_reads_rsb});
    const GateId dep_any_m = g.or_("cg.dep_any_m", {dep_rs1_m, dep_rsb_m});
    const GateId haz_mem =
        g.and_("cg.haz_mem", {m_wb_en, v_dest_mem_nz, dep_any_m});
    const GateId haz = g.or_("cg.haz", {haz_ex, haz_mem});
    stall_term = g.and_("cg.stall_t", {haz, n_redirect});
  }
  m.ctrl.gate(stall).kind = GateKind::kBuf;
  m.ctrl.gate(stall).fanin = {stall_term};
  m.ctrl.invalidate();

  // ---- CG: bypass selects (EX) ---------------------------------------------------
  g.set_stage(Stage::kEX);
  GateId fwda_mem, fwdb_mem, fwda_wb, fwdb_wb;
  if (bypassing) {
    const GateId n_m_is_load = g.not_("cg.n_m_is_load", m_is_load);
    fwda_mem = g.and_("cg.fwda_mem", {v_fwda_mem, v_dest_mem_nz, m_wb_en,
                                      n_m_is_load, q_reads_rs1});
    fwdb_mem = g.and_("cg.fwdb_mem", {v_fwdb_mem, v_dest_mem_nz, m_wb_en,
                                      n_m_is_load, q_reads_rsb});
    const GateId n_fwda_mem = g.not_("cg.n_fwda_mem", fwda_mem);
    const GateId n_fwdb_mem = g.not_("cg.n_fwdb_mem", fwdb_mem);
    fwda_wb = g.and_("cg.fwda_wb", {v_fwda_wb, v_dest_wb_nz, w_wb_en,
                                    q_reads_rs1, n_fwda_mem});
    fwdb_wb = g.and_("cg.fwdb_wb", {v_fwdb_wb, v_dest_wb_nz, w_wb_en,
                                    q_reads_rsb, n_fwdb_mem});
    for (GateId t : {fwda_mem, fwdb_mem, fwda_wb, fwdb_wb})
      g.mark_tertiary(t);
  } else {
    // Interlock-only: the bypass muxes are permanently on their register
    // operands.
    fwda_mem = fwdb_mem = fwda_wb = fwdb_wb = g.const0();
  }

  // ---- PC / IF-ID latch controls -----------------------------------------------
  g.set_stage(Stage::kIF);
  const GateId nstall_if = g.not_("cg.nstall_if", stall);
  const GateId pc_en = g.or_("cg.pc_en", {nstall_if, redirect});

  // ---- CTRL bindings ---------------------------------------------------------------
  auto bind = [&](NetId dp_net, const std::string& name, GateVec bits) {
    m.ctrl_binds.push_back({dp_net, g.mark_ctrl_vec(name, bits)});
  };
  bind(s.c_pc_en, "ctrl.pc_en", {pc_en});
  bind(s.c_ifid_en, "ctrl.ifid_en", {nstall_if});
  bind(s.c_ifid_clr, "ctrl.ifid_clr", {redirect});
  bind(s.c_redirect, "ctrl.redirect", {redirect});
  bind(s.c_idex_clr, "ctrl.idex_clr", {idex_clr});
  bind(s.c_imm_sel, "ctrl.imm_sel", d_imm_sel);
  bind(s.c_dest_sel, "ctrl.dest_sel", d_dest_sel);
  bind(s.c_fwd_a, "ctrl.fwd_a", {fwda_mem, fwda_wb});
  bind(s.c_fwd_b, "ctrl.fwd_b", {fwdb_mem, fwdb_wb});
  bind(s.c_use_imm, "ctrl.use_imm", {q_use_imm});
  bind(s.c_alu_sel, "ctrl.alu_sel", q_alu_sel);
  bind(s.c_jr_sel, "ctrl.jr_sel", {q_is_jreg});
  bind(s.c_mem_we, "ctrl.mem_we", {m_is_store});
  bind(s.c_mem_re, "ctrl.mem_re", {m_is_load});
  bind(s.c_size_sel, "ctrl.size_sel", m_size);
  bind(s.c_memres_sel, "ctrl.memres_sel", {m_is_load});
  bind(s.c_load_ext, "ctrl.load_ext", m_load_ext);
  bind(s.c_rf_we, "ctrl.rf_we", {w_wb_en});
  if (bp) {
    // BTB update on every control transfer, and on a false-positive
    // prediction (a non-branch predicted taken must invalidate its entry).
    g.set_stage(Stage::kEX);
    const GateId is_control = g.or_(
        "cg.is_control_ex", {q_is_beqz, q_is_bnez, q_is_jump, q_is_jreg});
    const GateId btb_we = g.or_("cg.btb_we", {is_control, pt_ex});
    bind(s.c_pred_taken, "ctrl.pred_taken", {pt_if});
    bind(s.c_actual_taken, "ctrl.actual_taken", {actual_taken});
    bind(s.c_btb_we, "ctrl.btb_we", {btb_we});
    bind(s.c_btb_valid_new, "ctrl.btb_valid_new", {actual_taken});
    g.mark_tertiary(pt_ex);
  }
}

}  // namespace hltg
