// Structural Verilog export of the two-level model.
//
// The paper's prototype consumed the DLX as 1552 lines of structural
// Verilog; our model is built programmatically, so this writer provides the
// inverse view: synthesizable-style Verilog-2001 for the word-level
// datapath and the gate-level controller, plus a top module wiring the two
// through their CTRL/STS bindings. Useful for inspecting the model in
// standard EDA tooling and for diffing model revisions.
#pragma once

#include <string>

#include "dlx/dlx.h"

namespace hltg {

/// Verilog for the datapath netlist (module `dlx_datapath`). State ports
/// (register file / data memory) become external interfaces.
std::string export_datapath_verilog(const Netlist& nl);

/// Verilog for the controller gate network (module `dlx_controller`).
std::string export_controller_verilog(const GateNet& gn);

/// Top module instantiating both and connecting CTRL/STS bindings.
std::string export_top_verilog(const DlxModel& m);

/// Identifier sanitizer (dots / brackets to underscores) - exposed for
/// tests.
std::string verilog_ident(const std::string& name);

}  // namespace hltg
