// Word-level datapath of the pipelined DLX (see dlx.h for the overview).
//
// Construction proceeds stage by stage. Three buses are forward-referenced
// (consumed by earlier stages than the one that drives them) and are
// predeclared: the PC, the EX/MEM result bus and the MEM/WB write-back bus.
#include "dlx/dlx.h"

#include "netlist/builder.h"

namespace hltg {

namespace {
unsigned log2u(unsigned v) {
  unsigned l = 0;
  while ((1u << l) < v) ++l;
  return l;
}
}  // namespace

DlxSignals build_dlx_datapath(Netlist& nl, const DlxConfig& cfg) {
  NetlistBuilder b(nl);
  DlxSignals s{};

  // ---- CTRL nets (created up front; the controller drives them) --------
  b.set_stage(Stage::kIF);
  s.c_pc_en = b.ctrl("ctrl.pc_en", 1);
  s.c_ifid_en = b.ctrl("ctrl.ifid_en", 1);
  s.c_ifid_clr = b.ctrl("ctrl.ifid_clr", 1);
  s.c_redirect = b.ctrl("ctrl.redirect", 1);
  b.set_stage(Stage::kID);
  s.c_idex_clr = b.ctrl("ctrl.idex_clr", 1);
  s.c_imm_sel = b.ctrl("ctrl.imm_sel", 2);
  s.c_dest_sel = b.ctrl("ctrl.dest_sel", 2);
  b.set_stage(Stage::kEX);
  s.c_fwd_a = b.ctrl("ctrl.fwd_a", 2);
  s.c_fwd_b = b.ctrl("ctrl.fwd_b", 2);
  s.c_use_imm = b.ctrl("ctrl.use_imm", 1);
  s.c_alu_sel = b.ctrl("ctrl.alu_sel", kAluSelW);
  s.c_jr_sel = b.ctrl("ctrl.jr_sel", 1);
  b.set_stage(Stage::kMEM);
  s.c_mem_we = b.ctrl("ctrl.mem_we", 1);
  s.c_mem_re = b.ctrl("ctrl.mem_re", 1);
  s.c_size_sel = b.ctrl("ctrl.size_sel", 2);
  s.c_memres_sel = b.ctrl("ctrl.memres_sel", 1);
  s.c_load_ext = b.ctrl("ctrl.load_ext", 3);
  b.set_stage(Stage::kWB);
  s.c_rf_we = b.ctrl("ctrl.rf_we", 1);
  if (cfg.branch_predictor) {
    b.set_stage(Stage::kIF);
    s.c_pred_taken = b.ctrl("ctrl.pred_taken", 1);
    b.set_stage(Stage::kEX);
    s.c_actual_taken = b.ctrl("ctrl.actual_taken", 1);
    s.c_btb_we = b.ctrl("ctrl.btb_we", 1);
    s.c_btb_valid_new = b.ctrl("ctrl.btb_valid_new", 1);
  }

  // ---- forward-referenced buses ----------------------------------------
  b.set_stage(Stage::kIF);
  s.pc_q = b.predeclare("pc", 32, NetRole::kDSO);
  b.set_stage(Stage::kMEM);
  s.exmem_result_q = b.predeclare("exmem.result", 32, NetRole::kDTO);
  b.set_stage(Stage::kWB);
  s.wb_value = b.predeclare("memwb.value", 32, NetRole::kDTO);

  // ---- IF ---------------------------------------------------------------
  b.set_stage(Stage::kIF);
  s.instr = b.input("if.instr", 32);
  const NetId c4 = b.constant("if.c4", 32, 4);
  const NetId pcplus4 = b.add("if.pcplus4", s.pc_q, c4);
  const NetId fetch_addr = b.zext("if.fetch_addr", s.pc_q, 32);
  b.output("if.fetch_addr_out", fetch_addr);

  // ---- IF/ID latch --------------------------------------------------------
  b.set_stage(Stage::kID);
  const NetId instr_id =
      b.reg("ifid.instr", s.instr, s.c_ifid_en, s.c_ifid_clr, 0);
  const NetId pcp4_id =
      b.reg("ifid.pcplus4", pcplus4, s.c_ifid_en, s.c_ifid_clr, 0);

  // ---- ID -----------------------------------------------------------------
  const NetId rs1_f = b.slice("id.rs1_f", instr_id, 21, 5);
  const NetId rsb_f = b.slice("id.rsb_f", instr_id, 16, 5);
  const NetId rdr_f = b.slice("id.rdr_f", instr_id, 11, 5);
  const NetId imm16 = b.slice("id.imm16", instr_id, 0, 16);
  const NetId imm26 = b.slice("id.imm26", instr_id, 0, 26);

  const NetId a_val = b.rf_read("id.rf_a", rs1_f, /*tag=*/0);
  const NetId b_val = b.rf_read("id.rf_b", rsb_f, /*tag=*/1);

  const NetId imm_s = b.sext("id.imm_s", imm16, 32);
  const NetId imm_z = b.zext("id.imm_z", imm16, 32);
  const NetId imm_j = b.sext("id.imm_j", imm26, 32);
  const NetId imm_ext =
      b.mux("id.imm_ext", s.c_imm_sel, {imm_s, imm_z, imm_j, imm_s});

  const NetId c31 = b.constant("id.c31", 5, 31);
  const NetId dest_id =
      b.mux("id.dest", s.c_dest_sel, {rdr_f, rsb_f, c31, c31});

  // ---- ID/EX latch (bubble on stall or squash via clear) ------------------
  b.set_stage(Stage::kEX);
  const NetId a_ex = b.reg("idex.a", a_val, kNoNet, s.c_idex_clr, 0);
  const NetId b_ex = b.reg("idex.b", b_val, kNoNet, s.c_idex_clr, 0);
  const NetId imm_ex = b.reg("idex.imm", imm_ext, kNoNet, s.c_idex_clr, 0);
  const NetId pcp4_ex =
      b.reg("idex.pcplus4", pcp4_id, kNoNet, s.c_idex_clr, 0);
  const NetId dest_ex = b.reg("idex.dest", dest_id, kNoNet, s.c_idex_clr, 0);
  const NetId rs1_ex = b.reg("idex.rs1", rs1_f, kNoNet, s.c_idex_clr, 0);
  const NetId rsb_ex = b.reg("idex.rsb", rsb_f, kNoNet, s.c_idex_clr, 0);

  // ---- ID-stage hazard comparators (need dest_ex, hence built here) -------
  b.set_stage(Stage::kID);
  const NetId zero5 = b.constant("id.zero5", 5, 0);
  s.s_ld_rs1 = b.predicate("sts.ld_rs1", ModuleKind::kEq, dest_ex, rs1_f);
  s.s_ld_rsb = b.predicate("sts.ld_rsb", ModuleKind::kEq, dest_ex, rsb_f);
  s.s_dest_ex_nz =
      b.predicate("sts.dest_ex_nz", ModuleKind::kNe, dest_ex, zero5);
  b.mark_status(s.s_ld_rs1);
  b.mark_status(s.s_ld_rsb);
  b.mark_status(s.s_dest_ex_nz);

  // ---- EX -----------------------------------------------------------------
  b.set_stage(Stage::kEX);
  const NetId fwd_a = b.mux("ex.a_byp", s.c_fwd_a,
                            {a_ex, s.exmem_result_q, s.wb_value, a_ex});
  const NetId fwd_b = b.mux("ex.b_byp", s.c_fwd_b,
                            {b_ex, s.exmem_result_q, s.wb_value, b_ex});
  const NetId op2 = b.mux("ex.op2", s.c_use_imm, {fwd_b, imm_ex});

  // ALU as a composition of primitive modules (Sec. V.A).
  const NetId alu_add = b.add("ex.alu_add", fwd_a, op2);
  const NetId alu_sub = b.sub("ex.alu_sub", fwd_a, op2);
  const NetId alu_and = b.and_w("ex.alu_and", fwd_a, op2);
  const NetId alu_or = b.or_w("ex.alu_or", fwd_a, op2);
  const NetId alu_xor = b.xor_w("ex.alu_xor", fwd_a, op2);
  const NetId shamt = b.slice("ex.shamt", op2, 0, 5);
  const NetId alu_shl = b.shl("ex.alu_shl", fwd_a, shamt);
  const NetId alu_srl = b.shr_l("ex.alu_srl", fwd_a, shamt);
  const NetId alu_sra = b.shr_a("ex.alu_sra", fwd_a, shamt);
  const NetId p_slt = b.predicate("ex.p_slt", ModuleKind::kLt, fwd_a, op2);
  const NetId p_sltu = b.predicate("ex.p_sltu", ModuleKind::kLtU, fwd_a, op2);
  const NetId p_seq = b.predicate("ex.p_seq", ModuleKind::kEq, fwd_a, op2);
  const NetId p_sne = b.predicate("ex.p_sne", ModuleKind::kNe, fwd_a, op2);
  const NetId slt32 = b.zext("ex.slt32", p_slt, 32);
  const NetId sltu32 = b.zext("ex.sltu32", p_sltu, 32);
  const NetId seq32 = b.zext("ex.seq32", p_seq, 32);
  const NetId sne32 = b.zext("ex.sne32", p_sne, 32);
  const NetId c16 = b.constant("ex.c16", 5, 16);
  const NetId alu_lhi = b.shl("ex.alu_lhi", imm_ex, c16);

  const NetId alu_res = b.mux(
      "ex.alu_res", s.c_alu_sel,
      {alu_add, alu_sub, alu_and, alu_or, alu_xor, alu_shl, alu_srl, alu_sra,
       slt32, sltu32, seq32, sne32, pcp4_ex, alu_lhi, alu_add, alu_add});

  // Control-transfer target.
  const NetId c2 = b.constant("ex.c2", 5, 2);
  const NetId imm_x4 = b.shl("ex.imm_x4", imm_ex, c2);
  const NetId btarget = b.add("ex.btarget", pcp4_ex, imm_x4);
  const NetId taken_target =
      b.mux("ex.redirect_target", s.c_jr_sel, {btarget, fwd_a});
  if (cfg.branch_predictor) {
    // With a predictor, a misprediction may also have to *resume* the
    // fall-through path (branch predicted taken but actually not taken).
    s.redirect_target = b.mux("ex.resume_target", s.c_actual_taken,
                              {pcp4_ex, taken_target});
  } else {
    s.redirect_target = taken_target;
  }
  b.set_role(s.redirect_target, NetRole::kDTO);

  const NetId zero32 = b.constant("ex.zero32", 32, 0);
  s.s_a_zero = b.predicate("sts.a_zero", ModuleKind::kEq, fwd_a, zero32);
  b.mark_status(s.s_a_zero);

  // Bypass comparators (sources in EX vs destinations in MEM / WB).
  b.set_stage(Stage::kMEM);
  const NetId dest_mem_pre = b.predeclare("exmem.dest", 5, NetRole::kDSO);
  b.set_stage(Stage::kWB);
  const NetId dest_wb_pre = b.predeclare("memwb.dest", 5, NetRole::kDSO);
  b.set_stage(Stage::kEX);
  s.s_fwda_mem =
      b.predicate("sts.fwda_mem", ModuleKind::kEq, rs1_ex, dest_mem_pre);
  s.s_fwdb_mem =
      b.predicate("sts.fwdb_mem", ModuleKind::kEq, rsb_ex, dest_mem_pre);
  s.s_fwda_wb =
      b.predicate("sts.fwda_wb", ModuleKind::kEq, rs1_ex, dest_wb_pre);
  s.s_fwdb_wb =
      b.predicate("sts.fwdb_wb", ModuleKind::kEq, rsb_ex, dest_wb_pre);
  const NetId zero5e = b.constant("ex.zero5", 5, 0);
  s.s_dest_mem_nz =
      b.predicate("sts.dest_mem_nz", ModuleKind::kNe, dest_mem_pre, zero5e);
  s.s_dest_wb_nz =
      b.predicate("sts.dest_wb_nz", ModuleKind::kNe, dest_wb_pre, zero5e);
  for (NetId n : {s.s_fwda_mem, s.s_fwdb_mem, s.s_fwda_wb, s.s_fwdb_wb,
                  s.s_dest_mem_nz, s.s_dest_wb_nz})
    b.mark_status(n);

  if (!cfg.bypassing) {
    // Interlock-only pipeline: the consumer in ID must also see hazards
    // against the producer in MEM (two-cycle interlock before write-through
    // covers the read).
    b.set_stage(Stage::kID);
    s.s_haz_rs1_mem =
        b.predicate("sts.haz_rs1_mem", ModuleKind::kEq, dest_mem_pre, rs1_f);
    s.s_haz_rsb_mem =
        b.predicate("sts.haz_rsb_mem", ModuleKind::kEq, dest_mem_pre, rsb_f);
    b.mark_status(s.s_haz_rs1_mem);
    b.mark_status(s.s_haz_rsb_mem);
    b.set_stage(Stage::kEX);
  }

  // ---- EX/MEM latch --------------------------------------------------------
  b.set_stage(Stage::kMEM);
  b.reg_into(s.exmem_result_q, "exmem.result", alu_res);
  const NetId sdata_mem = b.reg("exmem.sdata", fwd_b);
  b.reg_into(dest_mem_pre, "exmem.dest", dest_ex);

  // ---- MEM ------------------------------------------------------------------
  const NetId addr = s.exmem_result_q;
  const NetId offset = b.slice("mem.offset", addr, 0, 2);
  const NetId off1 = b.slice("mem.off1", offset, 1, 1);
  // Lane shift amount by access size: byte -> offset*8, half -> (offset&2)*8,
  // word -> 0. Shared by store alignment and load extraction.
  const NetId c0_3 = b.constant("mem.c0_3", 3, 0);
  const NetId c0_4 = b.constant("mem.c0_4", 4, 0);
  const NetId shamt_b = b.concat("mem.shamt_b", {c0_3, offset});
  const NetId shamt_h = b.concat("mem.shamt_h", {c0_4, off1});
  const NetId shamt_w = b.constant("mem.shamt_w", 5, 0);
  const NetId shamt8 = b.mux("mem.shamt8", s.c_size_sel,
                             {shamt_b, shamt_h, shamt_w, shamt_w});
  const NetId sdata_sh = b.shl("mem.sdata_sh", sdata_mem, shamt8);

  const NetId cb1 = b.constant("mem.cb1", 4, 1);
  const NetId cb2 = b.constant("mem.cb2", 4, 2);
  const NetId cb4 = b.constant("mem.cb4", 4, 4);
  const NetId cb8 = b.constant("mem.cb8", 4, 8);
  const NetId bem_b = b.mux("mem.bem_b", offset, {cb1, cb2, cb4, cb8});
  const NetId ch3 = b.constant("mem.ch3", 4, 0x3);
  const NetId chC = b.constant("mem.chC", 4, 0xC);
  const NetId bem_h = b.mux("mem.bem_h", off1, {ch3, chC});
  const NetId cF = b.constant("mem.cF", 4, 0xF);
  const NetId bemask = b.mux("mem.bemask", s.c_size_sel, {bem_b, bem_h, cF, cF});

  b.mem_write("mem.dwrite", addr, sdata_sh, bemask, s.c_mem_we);
  const NetId rword = b.mem_read("mem.dread", addr, s.c_mem_re);
  const NetId rshift = b.shr_l("mem.rshift", rword, shamt8);
  const NetId b8 = b.slice("mem.b8", rshift, 0, 8);
  const NetId h16 = b.slice("mem.h16", rshift, 0, 16);
  const NetId lb_s = b.sext("mem.lb_s", b8, 32);
  const NetId lb_u = b.zext("mem.lb_u", b8, 32);
  const NetId lh_s = b.sext("mem.lh_s", h16, 32);
  const NetId lh_u = b.zext("mem.lh_u", h16, 32);
  const NetId ld_val =
      b.mux("mem.ld_val", s.c_load_ext,
            {rword, lb_s, lb_u, lh_s, lh_u, rword, rword, rword});
  const NetId mem_result =
      b.mux("mem.result", s.c_memres_sel, {s.exmem_result_q, ld_val});

  // ---- MEM/WB latch ----------------------------------------------------------
  b.set_stage(Stage::kWB);
  b.reg_into(s.wb_value, "memwb.value", mem_result);
  b.reg_into(dest_wb_pre, "memwb.dest", dest_mem_pre);

  // ---- WB ---------------------------------------------------------------------
  b.rf_write("wb.rf_write", dest_wb_pre, s.wb_value, s.c_rf_we);

  // ---- branch predictor (optional): 4-entry direct-mapped BTB ---------------
  NetId btb_target_if = kNoNet;
  if (cfg.branch_predictor) {
    const unsigned n = cfg.btb_entries;
    const unsigned idx_w = log2u(n);
    const unsigned tag_w = 32 - 2 - idx_w;

    // Entry state (predeclared: read at IF, written from EX).
    b.set_stage(Stage::kIF);
    std::vector<NetId> v_q(n), tag_q(n), tgt_q(n);
    for (unsigned i = 0; i < n; ++i) {
      const std::string sfx = std::to_string(i);
      v_q[i] = b.predeclare("btb.valid" + sfx, 1, NetRole::kDSO);
      tag_q[i] = b.predeclare("btb.tag" + sfx, tag_w, NetRole::kDSO);
      tgt_q[i] = b.predeclare("btb.target" + sfx, 32, NetRole::kDSO);
    }

    // IF-side lookup.
    const NetId idx_if = b.slice("btb.idx_if", s.pc_q, 2, idx_w);
    const NetId v_sel = b.mux("btb.v_sel", idx_if,
                              std::vector<NetId>(v_q.begin(), v_q.end()));
    const NetId tag_sel = b.mux("btb.tag_sel", idx_if,
                                std::vector<NetId>(tag_q.begin(), tag_q.end()));
    btb_target_if = b.mux("btb.tgt_sel", idx_if,
                          std::vector<NetId>(tgt_q.begin(), tgt_q.end()));
    const NetId tag_if = b.slice("btb.tag_if", s.pc_q, 2 + idx_w, tag_w);
    const NetId tag_eq =
        b.predicate("btb.tag_eq", ModuleKind::kEq, tag_sel, tag_if);
    s.s_btb_hit = b.and_w("sts.btb_hit", v_sel, tag_eq);
    b.mark_status(s.s_btb_hit);

    // Pipeline the fetch PC and the predicted target down to EX.
    b.set_stage(Stage::kID);
    const NetId pc_id = b.reg("ifid.pc", s.pc_q, s.c_ifid_en, s.c_ifid_clr, 0);
    const NetId ptgt_id =
        b.reg("ifid.ptarget", btb_target_if, s.c_ifid_en, s.c_ifid_clr, 0);
    b.set_stage(Stage::kEX);
    const NetId pc_ex = b.reg("idex.pc", pc_id, kNoNet, s.c_idex_clr, 0);
    const NetId ptgt_ex = b.reg("idex.ptarget", ptgt_id, kNoNet, s.c_idex_clr, 0);

    // EX-side verification and update.
    s.s_ptarget_eq =
        b.predicate("sts.ptarget_eq", ModuleKind::kEq, ptgt_ex, taken_target);
    b.mark_status(s.s_ptarget_eq);
    const NetId idx_ex = b.slice("btb.idx_ex", pc_ex, 2, idx_w);
    const NetId tag_ex = b.slice("btb.tag_ex", pc_ex, 2 + idx_w, tag_w);
    for (unsigned i = 0; i < n; ++i) {
      const std::string sfx = std::to_string(i);
      const NetId ci = b.constant("btb.c" + sfx, idx_w, i);
      const NetId match =
          b.predicate("btb.match" + sfx, ModuleKind::kEq, idx_ex, ci);
      const NetId wr = b.and_w("btb.wr" + sfx, match, s.c_btb_we);
      const NetId v_next =
          b.mux("btb.v_next" + sfx, wr, {v_q[i], s.c_btb_valid_new});
      const NetId tag_next = b.mux("btb.tag_next" + sfx, wr, {tag_q[i], tag_ex});
      const NetId tgt_next =
          b.mux("btb.tgt_next" + sfx, wr, {tgt_q[i], taken_target});
      b.set_stage(Stage::kIF);
      b.reg_into(v_q[i], "btb.valid" + sfx, v_next);
      b.reg_into(tag_q[i], "btb.tag" + sfx, tag_next);
      b.reg_into(tgt_q[i], "btb.target" + sfx, tgt_next);
      b.set_stage(Stage::kEX);
    }
  }

  // ---- IF tail: next-PC logic (needs the EX redirect target) -----------------
  b.set_stage(Stage::kIF);
  NetId fallthrough = pcplus4;
  if (cfg.branch_predictor)
    fallthrough = b.mux("if.next_pc_pred", s.c_pred_taken,
                        {pcplus4, btb_target_if});
  const NetId next_pc =
      b.mux("if.next_pc", s.c_redirect, {fallthrough, s.redirect_target});
  b.reg_into(s.pc_q, "pc", next_pc, s.c_pc_en, kNoNet, 0);

  return s;
}

}  // namespace hltg
