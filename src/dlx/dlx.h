// Pipelined DLX implementation model (the paper's test vehicle, Sec. VI).
//
// Five-stage pipeline IF-ID-EX-MEM-WB implementing the 44-instruction DLX
// ISA with:
//   - full bypass network into EX (from EX/MEM and MEM/WB) on both operands,
//   - load-use interlock (1-cycle stall),
//   - control transfers resolved in EX under predict-not-taken with squash
//     of the two younger instructions,
//   - register-file write-through (WB write visible to same-cycle ID read).
//
// Following the paper's two-level model (Sec. III), the machine is split
// into a *word-level datapath netlist* and a *bit-level controller gate
// network* that interact only through CTRL and STS signals. The tertiary
// signals (stall, redirect/squash, bypass selects in the controller;
// forwarded result buses and the redirect target in the datapath) are
// explicitly labeled - they are what the pipeframe search cuts.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gatenet/gate_builder.h"
#include "gatenet/gatenet.h"
#include "isa/isa.h"
#include "netlist/netlist.h"

namespace hltg {

/// ALU result-mux input index (the CTRL value of `alu_sel`).
enum class AluSel : unsigned {
  kAdd = 0, kSub, kAnd, kOr, kXor, kShl, kSrl, kSra,
  kSlt, kSltu, kSeq, kSne, kLink, kLhi,
};
constexpr unsigned kAluSelW = 4;

/// Immediate-extension mux select.
enum class ImmSel : unsigned { kSext16 = 0, kZext16 = 1, kSext26 = 2 };

/// Destination-register mux select.
enum class DestSel : unsigned { kRdR = 0, kRdI = 1, kR31 = 2 };

/// Load-extension mux select (MEM stage).
enum class LoadExt : unsigned {
  kWord = 0, kByteS = 1, kByteU = 2, kHalfS = 3, kHalfU = 4,
};

/// Memory access size (bemask generation).
enum class MemSize : unsigned { kByte = 0, kHalf = 1, kWord = 2 };

/// Model configuration. The paper's DLX "has a five-stage pipeline and
/// branch prediction logic"; the default here is predict-not-taken (a
/// degenerate predictor), and `branch_predictor` enables a 4-entry
/// direct-mapped BTB: predict taken on hit at IF, verify at EX, redirect
/// and squash on misprediction (wrong direction or wrong target), update /
/// invalidate the entry from EX.
struct DlxConfig {
  bool branch_predictor = false;
  unsigned btb_entries = 4;  ///< power of two
  /// Full EX bypass network (default). When false, the pipeline is
  /// interlock-only: RAW hazards against producers in EX or MEM stall the
  /// consumer in ID until write-through covers the read - the classic
  /// unbypassed design the forwarding network is usually motivated against.
  bool bypassing = true;
};

/// Per-instruction control values - the "truth table" the controller's
/// decode PLA implements. Also used by tests to cross-check the gate-level
/// decode against this specification.
struct DecodedCtrl {
  AluSel alu_sel = AluSel::kAdd;
  bool use_imm = false;       ///< ALU operand 2 = extended immediate
  ImmSel imm_sel = ImmSel::kSext16;
  DestSel dest_sel = DestSel::kRdR;
  bool wb_en = false;         ///< writes a register (before R0 suppression)
  bool reads_rs1 = false;
  bool reads_rsB = false;     ///< reads R[instr[20:16]] (rs2 or store datum)
  bool is_load = false;
  bool is_store = false;
  MemSize mem_size = MemSize::kWord;
  LoadExt load_ext = LoadExt::kWord;
  bool is_beqz = false;
  bool is_bnez = false;
  bool is_jump = false;       ///< unconditional PC-relative (J/JAL)
  bool is_jreg = false;       ///< register-target jump (JR/JALR)
};

/// Reference decode table (one row per Op).
DecodedCtrl decoded_ctrl(Op op);

/// Binding of a multi-bit datapath CTRL net to its controller gate bits
/// (LSB first).
struct CtrlBind {
  NetId dp_net = kNoNet;
  GateVec bits;
};

/// Binding of a 1-bit datapath STS net to a controller input variable.
struct StsBind {
  NetId dp_net = kNoNet;
  GateId gate = kNoGate;
};

/// Handles to all named CTRL / STS nets of the datapath, populated by the
/// datapath builder and consumed by the controller builder.
struct DlxSignals {
  // CTRL nets (datapath side).
  NetId c_pc_en, c_ifid_en, c_ifid_clr, c_idex_clr;
  NetId c_redirect;            ///< 1: next PC comes from EX redirect target
  NetId c_fwd_a, c_fwd_b;      ///< 2-bit bypass selects
  NetId c_use_imm;             ///< ALU operand-2 select
  NetId c_alu_sel;             ///< 4-bit ALU result select
  NetId c_jr_sel;              ///< redirect target: 0 pc-rel, 1 register
  NetId c_imm_sel;             ///< 2-bit immediate extension select
  NetId c_dest_sel;            ///< 2-bit destination-register select
  NetId c_mem_we, c_mem_re;
  NetId c_size_sel;            ///< 2-bit store-size select
  NetId c_memres_sel;          ///< 0: ALU result, 1: load data
  NetId c_load_ext;            ///< 3-bit load-extension select
  NetId c_rf_we;
  // STS nets (datapath side).
  NetId s_a_zero;              ///< bypassed operand A == 0 (EX)
  NetId s_fwda_mem, s_fwdb_mem, s_fwda_wb, s_fwdb_wb;
  NetId s_dest_mem_nz, s_dest_wb_nz, s_dest_ex_nz;
  NetId s_ld_rs1, s_ld_rsb;    ///< load-use compares (ID)
  // Key datapath nets.
  NetId instr;                 ///< 32-bit DPI: fetched instruction word
  NetId pc_q;                  ///< PC register output (DPO)
  NetId redirect_target;       ///< EX -> IF tertiary data bus
  NetId exmem_result_q;        ///< MEM-stage forwarded bus (DTO)
  NetId wb_value;              ///< WB-stage forwarded / written-back bus (DTO)

  // Branch-predictor additions (kNoNet / unset when disabled).
  NetId c_pred_taken = kNoNet;   ///< IF: steer next PC to the BTB target
  NetId c_actual_taken = kNoNet; ///< EX: resume-target select (taken side)
  NetId c_btb_we = kNoNet;       ///< EX: BTB update enable
  NetId c_btb_valid_new = kNoNet;///< EX: new valid bit (actual taken)
  NetId s_btb_hit = kNoNet;      ///< IF: BTB hit for the fetch PC
  NetId s_ptarget_eq = kNoNet;   ///< EX: predicted target == actual target

  // Interlock-only additions (set when bypassing == false): ID-stage
  // comparators against the MEM-stage destination.
  NetId s_haz_rs1_mem = kNoNet;
  NetId s_haz_rsb_mem = kNoNet;
};

struct DlxModel {
  Netlist dp;
  GateNet ctrl;
  DlxSignals sig;
  DlxConfig cfg;
  GateVec cpi;                      ///< 12 CPI bits: opcode[5:0] ++ func[5:0]
  std::vector<CtrlBind> ctrl_binds; ///< every CTRL net with its gate bits
  std::vector<StsBind> sts_binds;   ///< every STS net with its var gate
  ModId rf_write_mod = kNoMod;
  ModId mem_write_mod = kNoMod;
  ModId mem_read_mod = kNoMod;

  const CtrlBind* find_ctrl(NetId n) const;
  const StsBind* find_sts(NetId n) const;
};

/// Build the complete model. The result is structurally checked (throws on
/// an internal inconsistency).
DlxModel build_dlx(DlxConfig cfg = {});

// Internal builder entry points (exposed for white-box tests).
DlxSignals build_dlx_datapath(Netlist& dp, const DlxConfig& cfg = {});
void build_dlx_controller(DlxModel& m);

}  // namespace hltg
