#include "dlx/signal_names.h"

#include <array>
#include <sstream>

#include "gatenet/levelize.h"

namespace hltg {

unsigned datapath_state_bits(const Netlist& dp) {
  unsigned bits = 0;
  for (ModId i = 0; i < dp.num_modules(); ++i) {
    const Module& m = dp.module(i);
    if (m.kind == ModuleKind::kReg) bits += dp.net(m.out).width;
  }
  return bits;
}

std::string describe_model(const DlxModel& m) {
  std::ostringstream os;
  os << "DLX pipelined implementation model\n";
  os << "==================================\n";
  os << "datapath: " << m.dp.num_modules() << " modules, " << m.dp.num_nets()
     << " nets, " << datapath_state_bits(m.dp)
     << " state bits (excl. register file)\n";

  std::array<int, kNumStages + 1> nets_by_stage{};
  for (NetId n = 0; n < m.dp.num_nets(); ++n)
    ++nets_by_stage[static_cast<int>(m.dp.net(n).stage)];
  os << "datapath nets by stage:";
  for (int s = 0; s <= kNumStages; ++s)
    os << " " << to_string(static_cast<Stage>(s)) << "=" << nets_by_stage[s];
  os << "\n";

  const GateNetStats cs = analyze(m.ctrl);
  os << "controller: " << cs.to_string() << "\n";
  os << "controller state bits by stage:";
  for (int s = 0; s <= kNumStages; ++s)
    os << " " << to_string(static_cast<Stage>(s)) << "=" << cs.dffs_by_stage[s];
  os << "\n";
  os << "tertiary signals by stage:";
  for (int s = 0; s <= kNumStages; ++s)
    os << " " << to_string(static_cast<Stage>(s)) << "="
       << cs.tertiary_by_stage[s];
  os << "\n";
  os << "pipeframe vs timeframe justification variables: "
     << cs.pipeframe_justify_vars() << " vs " << cs.timeframe_justify_vars()
     << "\n";

  os << "CTRL bindings (" << m.ctrl_binds.size() << "):\n";
  for (const CtrlBind& cb : m.ctrl_binds)
    os << "  " << m.dp.net(cb.dp_net).name << " ["
       << m.dp.net(cb.dp_net).width << "b] stage "
       << to_string(m.dp.net(cb.dp_net).stage) << "\n";
  os << "STS bindings (" << m.sts_binds.size() << "):\n";
  for (const StsBind& sb : m.sts_binds)
    os << "  " << m.dp.net(sb.dp_net).name << " stage "
       << to_string(m.dp.net(sb.dp_net).stage) << "\n";
  return os.str();
}

}  // namespace hltg
