#include "dlx/dlx.h"

#include <stdexcept>

#include "netlist/check.h"

namespace hltg {

const CtrlBind* DlxModel::find_ctrl(NetId n) const {
  for (const CtrlBind& cb : ctrl_binds)
    if (cb.dp_net == n) return &cb;
  return nullptr;
}

const StsBind* DlxModel::find_sts(NetId n) const {
  for (const StsBind& sb : sts_binds)
    if (sb.dp_net == n) return &sb;
  return nullptr;
}

DlxModel build_dlx(DlxConfig cfg) {
  DlxModel m;
  m.cfg = cfg;
  m.sig = build_dlx_datapath(m.dp, cfg);
  build_dlx_controller(m);

  const CheckResult cr = check_netlist(m.dp);
  if (!cr.ok())
    throw std::logic_error("DLX datapath check failed: " + cr.summary());
  (void)m.ctrl.topo_order();  // throws on a combinational cycle

  // Every CTRL net must be bound, with matching width; every STS net must
  // feed a controller variable.
  for (NetId n = 0; n < m.dp.num_nets(); ++n) {
    const Net& net = m.dp.net(n);
    if (net.role == NetRole::kCtrl) {
      const CtrlBind* cb = m.find_ctrl(n);
      if (!cb)
        throw std::logic_error("unbound CTRL net: " + net.name);
      if (cb->bits.size() != net.width)
        throw std::logic_error("CTRL width mismatch: " + net.name);
    } else if (net.role == NetRole::kSts) {
      if (!m.find_sts(n))
        throw std::logic_error("unbound STS net: " + net.name);
    }
  }

  m.rf_write_mod = m.dp.find_module("wb.rf_write");
  m.mem_write_mod = m.dp.find_module("mem.dwrite");
  m.mem_read_mod = m.dp.find_module("mem.dread");
  if (m.rf_write_mod == kNoMod || m.mem_write_mod == kNoMod ||
      m.mem_read_mod == kNoMod)
    throw std::logic_error("DLX state port modules missing");
  return m;
}

}  // namespace hltg
