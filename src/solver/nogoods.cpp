#include "solver/nogoods.h"

#include <algorithm>

namespace hltg {

bool NogoodStore::learn(std::vector<Lit> lits) {
  if (lits.empty() || lits.size() > max_lits_ || capacity_ == 0) return false;
  const std::uint64_t h = hash_lits(lits);
  for (Entry& e : entries_)
    if (e.hash == h && e.lits == lits) {
      e.stamp = ++clock_;
      return false;
    }
  if (recording_) recorded_.push_back(lits);
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    const std::uint64_t stamp = ++clock_;
    *victim = {std::move(lits), h, stamp, stamp};
    last_index_ = static_cast<std::size_t>(victim - entries_.begin());
  } else {
    const std::uint64_t stamp = ++clock_;
    entries_.push_back({std::move(lits), h, stamp, stamp});
    last_index_ = entries_.size() - 1;
  }
  ++learned_;
  return true;
}

}  // namespace hltg
