#include "solver/justcache.h"

#include <algorithm>

namespace hltg {

CanonStatus canonicalize_objectives(const std::vector<CtrlObjective>& in,
                                    std::vector<Lit>* out) {
  out->clear();
  out->reserve(in.size());
  for (const CtrlObjective& o : in) out->push_back({o.gate, o.cycle, o.value});
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  for (std::size_t i = 1; i < out->size(); ++i)
    if ((*out)[i].gate == (*out)[i - 1].gate &&
        (*out)[i].cycle == (*out)[i - 1].cycle)
      return CanonStatus::kContradiction;
  return CanonStatus::kOk;
}

const JustCacheEntry* JustCache::lookup(const std::vector<Lit>& key) {
  const std::uint64_t h = hash_lits(key);
  for (Slot& s : slots_)
    if (s.hash == h && s.key == key) {
      s.stamp = ++clock_;
      ++hits_;
      return &s.entry;
    }
  ++misses_;
  return nullptr;
}

void JustCache::insert(const std::vector<Lit>& key, JustCacheEntry entry) {
  if (capacity_ == 0) return;
  const std::uint64_t h = hash_lits(key);
  for (Slot& s : slots_)
    if (s.hash == h && s.key == key) {
      s.entry = std::move(entry);
      s.stamp = ++clock_;
      return;
    }
  if (slots_.size() >= capacity_) {
    auto victim = std::min_element(
        slots_.begin(), slots_.end(),
        [](const Slot& a, const Slot& b) { return a.stamp < b.stamp; });
    *victim = {h, key, std::move(entry), ++clock_};
  } else {
    slots_.push_back({h, key, std::move(entry), ++clock_});
  }
}

}  // namespace hltg
