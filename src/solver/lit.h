// Literal vocabulary of the deduction subsystem.
//
// A Lit names one (gate, cycle, value) point of the unrolled controller
// window - the shared currency of the implication engine (conflict cuts),
// the learned-conflict store (nogoods are sets of Lits that cannot all
// hold) and the justification cache (canonical objective signatures are
// sorted Lit vectors).
#pragma once

#include <cstdint>
#include <vector>

#include "gatenet/gatenet.h"

namespace hltg {

struct Lit {
  GateId gate = kNoGate;
  unsigned cycle = 0;
  bool value = false;

  bool operator==(const Lit&) const = default;
  /// (cycle, gate, value) order: canonical signatures sort cycle-major so a
  /// signature reads chronologically.
  friend bool operator<(const Lit& a, const Lit& b) {
    if (a.cycle != b.cycle) return a.cycle < b.cycle;
    if (a.gate != b.gate) return a.gate < b.gate;
    return a.value < b.value;
  }
};

/// FNV-1a over a literal vector (order-sensitive; hash canonical = sorted
/// vectors only).
inline std::uint64_t hash_lits(const std::vector<Lit>& lits) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  for (const Lit& l : lits) {
    mix(l.gate);
    mix((static_cast<std::uint64_t>(l.cycle) << 1) | (l.value ? 1 : 0));
  }
  return h;
}

}  // namespace hltg
