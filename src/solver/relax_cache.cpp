#include "solver/relax_cache.h"

#include <algorithm>

namespace hltg {

namespace {

void put(RelaxCache::Key& k, std::uint64_t v) { k.words.push_back(v); }

void put_str(RelaxCache::Key& k, const std::string& s) {
  put(k, s.size());
  std::uint64_t word = 0;
  unsigned n = 0;
  for (const char c : s) {
    word = (word << 8) | static_cast<unsigned char>(c);
    if (++n == 8) {
      put(k, word);
      word = 0;
      n = 0;
    }
  }
  if (n) put(k, word);
}

}  // namespace

RelaxCache::Key RelaxCache::make_key(
    const DpRelaxConfig& cfg, const RelaxVars& vars,
    const std::vector<RelaxConstraint>& constraints,
    const ErrorInjection& inj) {
  Key k;
  k.words.reserve(64);
  put(k, cfg.seed);
  put(k, cfg.max_iterations);
  put(k, cfg.max_depth);

  put(k, constraints.size());
  for (const RelaxConstraint& c : constraints) {
    put(k, static_cast<std::uint64_t>(c.kind));
    put(k, static_cast<std::uint64_t>(c.net));
    put(k, c.cycle);
    put(k, c.mask);
    put(k, c.value);
    put(k, static_cast<std::uint64_t>(c.net2));
    put_str(k, c.why);
  }

  put(k, vars.imem.size());
  for (const std::uint32_t w : vars.imem) put(k, w);
  put(k, vars.imem_fixed.size());
  for (const std::uint32_t w : vars.imem_fixed) put(k, w);
  for (const std::uint32_t r : vars.rf_init) put(k, r);
  put(k, vars.mem_init.size());
  for (const auto& [addr, val] : vars.mem_init) {
    put(k, addr);
    put(k, val);
  }

  // The injection goes last so the site-independent core is a prefix.
  const std::size_t core_words = k.words.size();
  put(k, inj.stuck.size());
  for (const StuckLine& s : inj.stuck) {
    put(k, static_cast<std::uint64_t>(s.net));
    put(k, s.bit);
    put(k, s.stuck_value ? 1 : 0);
  }
  put(k, inj.substitute.size());
  for (const auto& [mod, kind] : inj.substitute) {
    put(k, static_cast<std::uint64_t>(mod));
    put(k, static_cast<std::uint64_t>(kind));
  }
  put(k, inj.swap_inputs.size());
  for (const ModId m : inj.swap_inputs) put(k, static_cast<std::uint64_t>(m));
  put(k, inj.rewire.size());
  for (const auto& [slot, net] : inj.rewire) {
    put(k, static_cast<std::uint64_t>(slot.first));
    put(k, slot.second);
    put(k, static_cast<std::uint64_t>(net));
  }
  k.site_words = static_cast<std::uint32_t>(k.words.size() - core_words);
  return k;
}

std::uint64_t RelaxCache::hash_key(const Key& k) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the word stream
  for (const std::uint64_t w : k.words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// Do two keys agree on everything but the trailing injection words?
bool same_core(const RelaxCache::Key& a, const RelaxCache::Key& b) {
  if (a.words.size() < a.site_words || b.words.size() < b.site_words)
    return false;
  const std::size_t na = a.words.size() - a.site_words;
  if (na != b.words.size() - b.site_words) return false;
  return std::equal(a.words.begin(), a.words.begin() + na, b.words.begin());
}

}  // namespace

bool RelaxCache::find(const Key& key, DpRelaxResult* result, RelaxVars* vars) {
  ++lookups_;
  const std::uint64_t h = hash_key(key);
  for (Entry& e : entries_)
    if (e.hash == h && e.key == key) {
      e.stamp = ++clock_;
      *result = e.result;
      *vars = e.vars;
      ++hits_;
      return true;
    }
  // Miss: would a site-independent key have hit? Pure instrumentation -
  // the recorded result is NOT reused, since DPRELAX simulates the faulty
  // machine and its result genuinely depends on the injection.
  for (const Entry& e : entries_)
    if (same_core(e.key, key)) {
      ++cross_site_misses_;
      break;
    }
  return false;
}

void RelaxCache::store(const Key& key, const DpRelaxResult& result,
                       const RelaxVars& vars) {
  if (capacity_ == 0 || result.abort != AbortReason::kNone) return;
  const std::uint64_t h = hash_key(key);
  for (const Entry& e : entries_)
    if (e.hash == h && e.key == key) return;  // first writer wins
  Entry fresh{key, h, result, vars, ++clock_};
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(
        entries_.begin(), entries_.end(),
        [](const Entry& a, const Entry& b) { return a.stamp < b.stamp; });
    *victim = std::move(fresh);
  } else {
    entries_.push_back(std::move(fresh));
  }
}

std::vector<RelaxCache::Exported> RelaxCache::export_entries() const {
  std::vector<Exported> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back({e.key, e.result, e.vars});
  return out;
}

std::size_t RelaxCache::failure_entries() const {
  std::size_t n = 0;
  for (const Entry& e : entries_)
    if (e.result.status != TgStatus::kSuccess) ++n;
  return n;
}

}  // namespace hltg
