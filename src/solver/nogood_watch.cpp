#include "solver/nogood_watch.h"

#include <algorithm>

#include "solver/nogoods.h"

namespace hltg {

void NogoodWatcher::attach(std::uint32_t wi, int lit_idx) {
  const ImplicationEngine::NodeId nd =
      ngs_[wi].nodes[static_cast<std::size_t>(lit_idx)];
  if (watch_lists_[nd].empty()) touched_.push_back(nd);
  watch_lists_[nd].push_back(wi);
}

void NogoodWatcher::rebuild(const NogoodStore& store) {
  for (const ImplicationEngine::NodeId nd : touched_) watch_lists_[nd].clear();
  touched_.clear();
  ngs_.clear();
  parked_.clear();
  if (watch_lists_.empty())
    watch_lists_.resize(eng_.node(0, eng_.cycles()));
  cursor_ = eng_.trail().size();

  std::uint64_t scratch = 0;  // registration probes are not "comparisons"
  for (std::size_t i = 0; i < store.size(); ++i) {
    const std::vector<Lit>& lits = store.lits(i);
    bool fits = true;
    for (const Lit& l : lits)
      if (l.cycle >= eng_.cycles()) {
        fits = false;
        break;
      }
    if (!fits) continue;
    Watched w;
    w.lits = lits;
    w.nodes.reserve(lits.size());
    for (const Lit& l : lits) w.nodes.push_back(eng_.node(l.gate, l.cycle));
    w.store_idx = i;
    w.store_id = store.id(i);
    const std::uint32_t wi = static_cast<std::uint32_t>(ngs_.size());
    ngs_.push_back(std::move(w));
    // Pick two non-holding literals to watch against the post-reset values;
    // a nogood without two (unit or fully held under the reset fixpoint)
    // parks until the first propagate() deals with it.
    Watched& reg = ngs_.back();
    int a = -1, b = -1;
    for (int j = 0; j < static_cast<int>(reg.lits.size()) && b < 0; ++j)
      if (state(reg, j, &scratch) != LS::kHolds) (a < 0 ? a : b) = j;
    if (b >= 0) {
      reg.w1 = a;
      reg.w2 = b;
      attach(wi, a);
      attach(wi, b);
    } else {
      parked_.push_back(wi);
    }
  }
}

void NogoodWatcher::add(const std::vector<Lit>& lits, std::size_t store_idx,
                        std::uint64_t store_id) {
  bool fits = true;
  for (const Lit& l : lits)
    if (l.cycle >= eng_.cycles()) {
      fits = false;
      break;
    }
  if (!fits) return;
  Watched w;
  w.lits = lits;
  w.nodes.reserve(lits.size());
  for (const Lit& l : lits) w.nodes.push_back(eng_.node(l.gate, l.cycle));
  w.store_idx = store_idx;
  w.store_id = store_id;
  ngs_.push_back(std::move(w));
  // A cut learned mid-solve is fully held at learn time: park it; the
  // parked scan watches or fires it once the search has backtracked.
  parked_.push_back(static_cast<std::uint32_t>(ngs_.size() - 1));
}

bool NogoodWatcher::fire(const Watched& w, int open, NogoodStore& store,
                         std::uint64_t* hits) {
  ++*hits;
  store.touch_if(w.store_idx, w.store_id);
  const std::size_t target = open >= 0 ? static_cast<std::size_t>(open) : 0;
  std::vector<ImplicationEngine::NodeId> antecedents;
  antecedents.reserve(w.nodes.size() - 1);
  for (std::size_t j = 0; j < w.nodes.size(); ++j)
    if (j != target) antecedents.push_back(w.nodes[j]);
  const Lit& t = w.lits[target];
  if (!eng_.imply_from_nogood(t.gate, t.cycle, !t.value, antecedents))
    return false;
  return eng_.propagate();
}

bool NogoodWatcher::scan_parked(std::uint32_t wi, NogoodStore& store,
                                std::uint64_t* hits, std::uint64_t* comparisons,
                                bool* fired, bool* established) {
  Watched& w = ngs_[wi];
  int a = -1, b = -1, open = -1;
  bool broken = false;
  for (int j = 0; j < static_cast<int>(w.lits.size()); ++j) {
    const LS s = state(w, j, comparisons);
    if (s == LS::kHolds) continue;
    if (a < 0)
      a = j;
    else if (b < 0)
      b = j;
    if (s == LS::kBroken)
      broken = true;
    else
      open = j;
  }
  if (b >= 0) {
    // Two non-holding literals: establish the watch pair and unpark.
    w.w1 = a;
    w.w2 = b;
    attach(wi, a);
    attach(wi, b);
    *established = true;
    return true;
  }
  if (broken) return true;  // satisfied: stays parked, nothing to do
  // Unit (one free literal) or fully held: fire exactly like the rescan.
  *fired = true;
  return fire(w, open, store, hits);
}

bool NogoodWatcher::propagate(NogoodStore& store, std::uint64_t* hits,
                              std::uint64_t* comparisons) {
  const std::vector<ImplicationEngine::NodeId>& trail = eng_.trail();
  for (;;) {
    while (cursor_ < trail.size()) {
      const ImplicationEngine::NodeId nd = trail[cursor_++];
      std::vector<std::uint32_t>& wl = watch_lists_[nd];
      for (std::size_t k = 0; k < wl.size();) {
        const std::uint32_t wi = wl[k];
        Watched& w = ngs_[wi];
        const int j = w.nodes[static_cast<std::size_t>(w.w1)] == nd ? w.w1
                                                                    : w.w2;
        const int o = j == w.w1 ? w.w2 : w.w1;
        if (state(w, j, comparisons) != LS::kHolds) {
          ++k;  // assignment broke the literal: nogood satisfied
          continue;
        }
        if (state(w, o, comparisons) == LS::kBroken) {
          ++k;  // satisfied via the other watch (lazy invariant case)
          continue;
        }
        // Hunt a replacement non-holding literal to watch instead.
        int repl = -1;
        for (int r = 0; r < static_cast<int>(w.lits.size()); ++r) {
          if (r == w.w1 || r == w.w2) continue;
          if (state(w, r, comparisons) != LS::kHolds) {
            repl = r;
            break;
          }
        }
        if (repl >= 0) {
          (j == w.w1 ? w.w1 : w.w2) = repl;
          attach(wi, repl);
          wl[k] = wl.back();  // detach from this node's list
          wl.pop_back();
          continue;
        }
        // Every literal but the other watch holds: unit or conflict.
        const LS os = state(w, o, comparisons);
        if (!fire(w, os == LS::kFree ? o : -1, store, hits)) return false;
        ++k;
      }
    }
    // Trail drained: give the parked (freshly learned / reset-unit)
    // nogoods their legacy-style scan. Any firing extends the trail, so
    // loop back around until nothing moves.
    bool fired = false;
    for (std::size_t p = 0; p < parked_.size();) {
      bool established = false;
      if (!scan_parked(parked_[p], store, hits, comparisons, &fired,
                       &established))
        return false;
      if (established) {
        parked_[p] = parked_.back();
        parked_.pop_back();
      } else {
        ++p;
      }
    }
    if (!fired && cursor_ >= trail.size()) return true;
  }
}

}  // namespace hltg
