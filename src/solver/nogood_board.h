// Shared nogood board: cross-worker exchange of learned conflict cuts.
//
// Campaign-scope deduction under --jobs > 1 wants every worker to benefit
// from every worker's conflicts, but the propagation hot path must stay
// free of locks and atomics. The board gets both by trading in immutable
// snapshots:
//
//  - The master cut list is append-only and content-deduplicated, guarded
//    by a mutex that is only ever taken BETWEEN errors (publish / import),
//    never inside a search.
//  - Each publish that actually adds cuts builds a fresh immutable
//    Snapshot (copy-on-publish) and bumps the epoch; readers grab the
//    current shared_ptr under the mutex and then walk it lock-free.
//  - A worker imports by replaying the master list's tail (everything past
//    its own cursor) into its private NogoodStore via learn() - after
//    which the hot path sees only its private store, exactly as in
//    single-worker campaign scope.
//
// Sharing is outcome-neutral for the same reason campaign scope is: a cut
// is a consequence of the controller netlist alone, so importing another
// worker's cut can only prune proven-doomed subtrees (docs/SOLVER.md).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "solver/lit.h"

namespace hltg {

class NogoodBoard {
 public:
  /// Immutable published state. `cuts` extends append-only from snapshot
  /// to snapshot, so a cursor into one snapshot stays valid in the next.
  struct Snapshot {
    std::vector<std::vector<Lit>> cuts;
  };

  /// Append the cuts not already on the board (content-hash dedup) and, if
  /// any were new, publish a fresh snapshot. Thread-safe.
  void publish(std::vector<std::vector<Lit>> cuts);

  /// Current snapshot (nullptr until the first productive publish).
  /// Thread-safe; the returned snapshot is immutable.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Bumped once per productive publish.
  std::uint64_t epoch() const;

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Snapshot> snap_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t epoch_ = 0;
};

}  // namespace hltg
