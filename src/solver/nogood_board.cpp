#include "solver/nogood_board.h"

namespace hltg {

void NogoodBoard::publish(std::vector<std::vector<Lit>> cuts) {
  if (cuts.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::vector<Lit>> fresh;
  for (std::vector<Lit>& c : cuts) {
    if (c.empty()) continue;
    // A hash collision drops a cut, which only costs reuse - cuts are
    // redundant consequences of the netlist, never load-bearing.
    if (seen_.insert(hash_lits(c)).second) fresh.push_back(std::move(c));
  }
  if (fresh.empty()) return;
  auto next = std::make_shared<Snapshot>();
  if (snap_) next->cuts = snap_->cuts;  // copy-on-publish
  for (std::vector<Lit>& c : fresh) next->cuts.push_back(std::move(c));
  snap_ = std::move(next);
  ++epoch_;
}

std::shared_ptr<const NogoodBoard::Snapshot> NogoodBoard::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snap_;
}

std::uint64_t NogoodBoard::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

}  // namespace hltg
