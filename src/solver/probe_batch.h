// Batched decision probing for CTRLJUST: many speculative assignments per
// window sweep through the lane engine's 01X kernels.
//
// At every branch point the engine-assisted search holds a set of forward
// implications (the ControllerWindow trajectory) and a set of candidate
// decision assignments - the backtrace targets of the open objectives, in
// both polarities. Serially, finding out that a candidate is doomed costs a
// decision, a full-window imply and a backtrack. The probe layer instead
// packs one candidate-polarity per SIMD lane (bit-pair 01X planes, up to
// kMaxLanes lanes per sweep) and runs ONE masked window evaluation over the
// fanout cone of the probed variables (gatenet/evalw eval_gates3w): lane j
// carries the base trajectory plus candidate j's assignment, and an
// objective forced to the opposite of its required value in lane j proves
// that candidate doomed by forward implication.
//
// Soundness (why a doomed probe can prune without changing the witness):
// 3-valued forward evaluation is monotone in the assignment set. If
// base + {x=v} forces an objective g to the wrong value, then every
// extension S of the current node's assignments forces it too
// (S + {x=v} refines base + {x=v}); a success leaf that assigned x=v is
// therefore impossible, and a success leaf that left x at X would stay
// satisfied under x=v by the same monotonicity - contradiction when BOTH
// polarities are doomed. Skipping a doomed branch (or collapsing a node
// whose candidate is doomed both ways) therefore never changes the first
// success leaf the chronological flip-search reaches - only how many
// decisions + backtracks it burns getting there (docs/SOLVER.md,
// "Batched probing").
//
// Determinism: per-lane results are independent of how lanes are grouped
// into sweeps, and every lane backend computes bit-identical plane words,
// so outcomes are the same for any --lanes width and any
// scalar/AVX2/AVX-512 backend. The serial reference path (config.serial)
// evaluates one candidate-polarity per sweep through the same kernels and
// must produce byte-identical outcomes - the equivalence corpus in
// tests/test_probe_batch.cpp holds the two paths together.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/objectives.h"
#include "core/unroll.h"
#include "gatenet/gatenet.h"

namespace hltg {

/// One candidate decision point: a free kVar bit of one window cycle. Both
/// polarities are probed. The variable must be unassigned in the window the
/// probe runs against.
struct ProbeCand {
  GateId gate;
  unsigned cycle;
};

/// A speculative assignment applied to EVERY lane of a sweep (the anchored
/// run): probing candidates under "branch variable := value" yields the
/// pair verdicts of the dilemma rule - if some candidate conflicts in both
/// polarities beneath the anchor, the anchor assignment itself has no
/// success leaf (see "Pair probing" in docs/SOLVER.md).
struct ProbeAnchor {
  GateId gate;
  unsigned cycle;
  bool value;
};

/// Per-candidate probe verdicts, indexed by the probed value.
struct ProbeOutcome {
  /// doomed[v]: assigning the candidate value v forces some objective to
  /// the opposite of its required value - every extension conflicts.
  bool doomed[2] = {false, false};
  /// implied[v]: determined (non-X) cone-gate values over the swept window
  /// after assigning v. Only filled when count_implied is set; used by the
  /// --probe-order ranking. Base-determined cone values are included (a
  /// per-probe-set constant, irrelevant to the ranking comparisons).
  std::uint32_t implied[2] = {0, 0};
};

struct ProbeBatchStats {
  std::uint64_t batches = 0;  ///< masked window sweeps issued
  std::uint64_t lanes = 0;    ///< candidate-polarity lanes evaluated
};

struct ProbeBatchConfig {
  /// Lanes per sweep; 0 = resolve_lanes() (HLTG_LANES / CPUID auto).
  unsigned lanes = 0;
  /// Scalar reference path: one candidate-polarity per sweep. Outcomes are
  /// byte-identical to the batched path; only ProbeBatchStats::batches
  /// differs (one sweep per lane instead of per chunk).
  bool serial = false;
  /// Count implied literals per lane (needed by --probe-order ranking;
  /// skipped otherwise - dooming needs no per-lane popcounts).
  bool count_implied = false;
};

class ProbeBatch {
 public:
  ProbeBatch(const GateNet& gn, unsigned cycles, ProbeBatchConfig cfg = {});

  /// Base-trajectory source: the value the caller's sound implication state
  /// assigns to (gate, cycle). Any sound refinement works - the stronger
  /// the base, the more dooms the probe sees (CTRLJUST feeds the window
  /// trajectory merged with the engine's backward-derived facts).
  using BaseFn = std::function<L3(GateId, unsigned)>;

  /// Probe every candidate, both polarities, against the given base
  /// trajectory. `out` is resized to cands.size(). Candidates must be free
  /// (base(gate, cycle) == L3::X) kVar bits.
  void run(const BaseFn& base, const std::vector<CtrlObjective>& objectives,
           const std::vector<ProbeCand>& cands, std::vector<ProbeOutcome>* out);

  /// Anchored sweep: like run(), but every lane additionally carries the
  /// anchor assignment (a free variable the caller is about to decide).
  /// A candidate doomed both ways here refutes the ANCHOR, not the node.
  void run(const BaseFn& base, const std::vector<CtrlObjective>& objectives,
           const ProbeAnchor& anchor, const std::vector<ProbeCand>& cands,
           std::vector<ProbeOutcome>* out);

  /// Convenience overload: base = the window's implied trajectory.
  void run(const ControllerWindow& win,
           const std::vector<CtrlObjective>& objectives,
           const std::vector<ProbeCand>& cands, std::vector<ProbeOutcome>* out);

  const ProbeBatchStats& stats() const { return stats_; }

 private:
  /// Static fanout closure of a probed variable set, time-collapsed: the
  /// gates a candidate assignment can reach in ANY later cycle (DFTs cross
  /// cycles through the cone DFF carry). Everything outside holds its
  /// lane-uniform base value, so the sweep evaluates only `eval`.
  struct Cone {
    std::vector<GateId> key;   ///< sorted unique probed var gates
    std::vector<GateId> eval;  ///< combinational members, topo order
    /// (DFF gate, D input) pairs inside the cone; lanes are latched across
    /// cycles instead of re-broadcast from the base trajectory.
    std::vector<std::pair<GateId, GateId>> dffs;
  };

  const Cone& cone_for(const std::vector<ProbeCand>& cands,
                       const ProbeAnchor* anchor);
  void run_impl(const BaseFn& base,
                const std::vector<CtrlObjective>& objectives,
                const ProbeAnchor* anchor, const std::vector<ProbeCand>& cands,
                std::vector<ProbeOutcome>* out);
  /// Evaluate candidate-polarity pairs [p0, p1) as one lane batch.
  void sweep_span(const BaseFn& base,
                  const std::vector<CtrlObjective>& objectives,
                  const ProbeAnchor* anchor,
                  const std::vector<ProbeCand>& cands, const Cone& cone,
                  std::size_t p0, std::size_t p1, unsigned tmax,
                  std::vector<ProbeOutcome>* out);

  const GateNet& gn_;
  unsigned cycles_;
  ProbeBatchConfig cfg_;
  unsigned chunk_;  ///< pairs per sweep (1 on the serial path)
  ProbeBatchStats stats_;
  std::vector<Cone> cones_;  ///< bounded cone cache (probe sets repeat)
  // Reused scratch: plane pairs, doomed accumulator, DFF lane carry,
  // per-lane implied counts, cone-cache key.
  std::vector<std::uint64_t> ones_, zeros_, doomed_, carry1_, carry0_;
  std::vector<std::uint32_t> implied_;
  std::vector<GateId> key_;
};

}  // namespace hltg
