// Shared deduction context: one SolverContext per generator (per campaign
// worker), owning the learned-conflict store, the justification cache and
// the DPRELAX memo that successive searches share.
//
// Scope and determinism: with scope == kError (the default) TG resets the
// context at the start of every generate() call, so learned state is
// reused across the plans x windows of ONE error but never leaks between
// errors. This keeps campaign rows byte-identical regardless of how errors
// are distributed over --jobs workers. scope == kCampaign keeps the
// context alive across errors of a single worker: outcomes, witnesses and
// emitted tests stay identical to error scope because every piece of
// carried state is outcome-neutral - nogoods are consequences of the
// controller netlist alone (valid for any objective set and window, see
// nogoods.h), cached justifications and relax results replay the exact
// result the fresh search would recompute, and the engine-assisted search
// only prunes proven-doomed subtrees, which never changes the first
// success leaf. Effort counters (decisions, hits) legitimately differ -
// that is the reuse.
//
// Multi-worker campaigns (--jobs > 1) attach every worker's context to one
// NogoodBoard: workers publish their newly learned cuts and import the
// other workers' cuts between errors (see TestGenerator::generate), so the
// hot path still only ever touches the worker-private stores. Contexts can
// also be persisted across processes through src/solver/store.h; both
// mechanisms move only outcome-neutral state, so the byte-identical
// guarantee above extends to sharded and warm-started campaigns
// (docs/ROBUSTNESS.md).
#pragma once

#include <cstddef>

#include "solver/justcache.h"
#include "solver/nogood_board.h"
#include "solver/nogoods.h"
#include "solver/relax_cache.h"

namespace hltg {

/// Lifetime of the deduction state (see header comment).
enum class SolverScope {
  kError,     ///< reset per error: order-independent, any --jobs
  kCampaign,  ///< keep across a worker's errors (any --jobs; workers
              ///< exchange nogoods through a shared NogoodBoard)
};

struct SolverConfig {
  bool enable = true;       ///< false: legacy PODEM search, no solver state
  bool use_nogoods = true;  ///< learn + apply conflict cuts
  bool use_cache = true;    ///< reuse justification results across plans
  /// Apply nogoods through two watched assignments per nogood instead of
  /// rescanning the whole store every propagation round. Same fixpoints,
  /// same firings - strictly fewer literal probes (docs/SOLVER.md).
  bool use_nogood_watches = true;
  /// Memoize definitive DPRELAX backsolve results keyed on the full
  /// subproblem (seed, constraints, entry state, injection). The failure
  /// entries act as learned cuts for the window retry, which replays the
  /// same plans against a wider window.
  bool use_relax_cache = true;
  SolverScope scope = SolverScope::kError;
  /// Cross-worker nogood exchange (campaign scope only). Not owned; must
  /// outlive every generator attached to it. nullptr: no sharing.
  NogoodBoard* shared_board = nullptr;
  std::size_t nogood_capacity = 256;
  std::size_t cache_capacity = 512;
  std::size_t relax_cache_capacity = 256;
  /// Cuts wider than this are not worth storing: they almost never fire
  /// again and linear matching would dominate.
  std::size_t max_nogood_lits = 8;
};

struct SolverContext {
  SolverConfig cfg;
  NogoodStore nogoods;
  JustCache cache;
  RelaxCache relax;

  explicit SolverContext(SolverConfig c = {})
      : cfg(c),
        nogoods(c.nogood_capacity, c.max_nogood_lits),
        cache(c.cache_capacity),
        relax(c.relax_cache_capacity) {
    // Recording feeds the board; without one it would only burn memory.
    if (cfg.shared_board) nogoods.set_recording(true);
  }

  void reset() {
    nogoods.clear();
    cache.clear();
    relax.clear();
  }

  /// Exchange nogoods with the shared board: publish cuts learned since
  /// the last sync, then import the other workers' cuts this context has
  /// not seen yet. Called by TG between errors (never inside a search);
  /// no-op without a board.
  void sync_shared_nogoods() {
    NogoodBoard* board = cfg.shared_board;
    if (!board) return;
    board->publish(nogoods.drain_recorded());
    const auto snap = board->snapshot();
    if (!snap) return;
    // Re-importing a cut this store already holds (including its own
    // publications) is a learn() duplicate no-op.
    for (; board_cursor_ < snap->cuts.size(); ++board_cursor_)
      nogoods.learn(snap->cuts[board_cursor_]);
  }

 private:
  std::size_t board_cursor_ = 0;  ///< master-list position already imported
};

}  // namespace hltg
