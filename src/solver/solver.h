// Shared deduction context: one SolverContext per generator (per campaign
// worker), owning the learned-conflict store, the justification cache and
// the DPRELAX memo that successive searches share.
//
// Scope and determinism: with scope == kError (the default) TG resets the
// context at the start of every generate() call, so learned state is
// reused across the plans x windows of ONE error but never leaks between
// errors. This keeps campaign rows byte-identical regardless of how errors
// are distributed over --jobs workers. scope == kCampaign keeps the
// context alive across errors of a single worker: outcomes, witnesses and
// emitted tests stay identical to error scope because every piece of
// carried state is outcome-neutral - nogoods are consequences of the
// controller netlist alone (valid for any objective set and window, see
// nogoods.h), cached justifications and relax results replay the exact
// result the fresh search would recompute, and the engine-assisted search
// only prunes proven-doomed subtrees, which never changes the first
// success leaf. Effort counters (decisions, hits) legitimately differ -
// that is the reuse. Campaign scope is only offered for single-worker
// runs (--jobs 1), where "which errors came before" is a deterministic
// function of the campaign itself, keeping those counters reproducible
// run over run (docs/SOLVER.md).
#pragma once

#include <cstddef>

#include "solver/justcache.h"
#include "solver/nogoods.h"
#include "solver/relax_cache.h"

namespace hltg {

/// Lifetime of the deduction state (see header comment).
enum class SolverScope {
  kError,     ///< reset per error: order-independent, any --jobs
  kCampaign,  ///< keep across a worker's errors: --jobs 1 only
};

struct SolverConfig {
  bool enable = true;       ///< false: legacy PODEM search, no solver state
  bool use_nogoods = true;  ///< learn + apply conflict cuts
  bool use_cache = true;    ///< reuse justification results across plans
  /// Apply nogoods through two watched assignments per nogood instead of
  /// rescanning the whole store every propagation round. Same fixpoints,
  /// same firings - strictly fewer literal probes (docs/SOLVER.md).
  bool use_nogood_watches = true;
  /// Memoize definitive DPRELAX backsolve results keyed on the full
  /// subproblem (seed, constraints, entry state, injection). The failure
  /// entries act as learned cuts for the window retry, which replays the
  /// same plans against a wider window.
  bool use_relax_cache = true;
  SolverScope scope = SolverScope::kError;
  std::size_t nogood_capacity = 256;
  std::size_t cache_capacity = 512;
  std::size_t relax_cache_capacity = 256;
  /// Cuts wider than this are not worth storing: they almost never fire
  /// again and linear matching would dominate.
  std::size_t max_nogood_lits = 8;
};

struct SolverContext {
  SolverConfig cfg;
  NogoodStore nogoods;
  JustCache cache;
  RelaxCache relax;

  explicit SolverContext(SolverConfig c = {})
      : cfg(c),
        nogoods(c.nogood_capacity, c.max_nogood_lits),
        cache(c.cache_capacity),
        relax(c.relax_cache_capacity) {}

  void reset() {
    nogoods.clear();
    cache.clear();
    relax.clear();
  }
};

}  // namespace hltg
