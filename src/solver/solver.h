// Shared deduction context: one SolverContext per generator (per campaign
// worker), owning the learned-conflict store and the justification cache
// that successive CTRLJUST searches of the same error share.
//
// Scope and determinism: TG resets the context at the start of every
// generate() call, so learned nogoods and cached justifications are reused
// across the plans x windows of ONE error but never leak between errors.
// This keeps campaign rows byte-identical regardless of how errors are
// distributed over --jobs workers - a campaign-lifetime store would make
// each error's search depend on which errors its worker saw before it.
#pragma once

#include <cstddef>

#include "solver/justcache.h"
#include "solver/nogoods.h"

namespace hltg {

struct SolverConfig {
  bool enable = true;       ///< false: legacy PODEM search, no solver state
  bool use_nogoods = true;  ///< learn + apply conflict cuts
  bool use_cache = true;    ///< reuse justification results across plans
  std::size_t nogood_capacity = 256;
  std::size_t cache_capacity = 512;
  /// Cuts wider than this are not worth storing: they almost never fire
  /// again and linear matching would dominate.
  std::size_t max_nogood_lits = 8;
};

struct SolverContext {
  SolverConfig cfg;
  NogoodStore nogoods;
  JustCache cache;

  explicit SolverContext(SolverConfig c = {})
      : cfg(c),
        nogoods(c.nogood_capacity, c.max_nogood_lits),
        cache(c.cache_capacity) {}

  void reset() {
    nogoods.clear();
    cache.clear();
  }
};

}  // namespace hltg
