// Justification cache: canonical objective-set signature -> CTRLJUST result.
//
// DPTRACE enumerates many candidate paths per error, and the CTRL objective
// sets it emits across those paths are near-identical (same decoder bits,
// same cycles, reshuffled order). The cache canonicalizes an objective set
// to a sorted (gate, cycle, value) signature and keys SUCCESS/FAILURE
// results - with the CPI/STS witness on success - on that signature alone,
// so repeat sets are answered without a search.
//
// The unrolled-window length is deliberately NOT part of the key. The
// CTRLJUST search only ever reads and assigns cycles <= the latest
// objective cycle: forward implication moves strictly forward in time (a
// DFF couples q(t) to D(t-1)), backtrace walks backward from an objective,
// and the violated/open classification reads objective cycles only. A
// longer window appends cycles the search never consults, so a definitive
// result for an objective set holds in every window that admits the set -
// which is what makes the window-retry re-solves of TG (same plans, longer
// unrolling) cache hits instead of repeat searches.
//
// Only *definitive* results are cacheable: a search that stopped on a
// backtrack/decision cap or deadline proves nothing about the objective
// set, and caching it would make detection outcomes depend on budget
// history. Callers must pass abort == kNone results only.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/objectives.h"
#include "solver/lit.h"

namespace hltg {

enum class CanonStatus {
  kOk,
  kContradiction,  ///< same (gate, cycle) demanded both 0 and 1
};

/// Sort objectives into (cycle, gate, value) order and drop duplicates.
/// Returns kContradiction when the set demands both values of one point -
/// such a set is unsatisfiable without any search.
CanonStatus canonicalize_objectives(const std::vector<CtrlObjective>& in,
                                    std::vector<Lit>* out);

struct JustCacheEntry {
  bool success = false;
  std::vector<std::tuple<GateId, unsigned, bool>> sts_assignments;
  std::vector<std::tuple<GateId, unsigned, bool>> cpi_assignments;
};

class JustCache {
 public:
  explicit JustCache(std::size_t capacity = 512) : capacity_(capacity) {}

  /// nullptr on miss. The pointer is invalidated by the next insert().
  const JustCacheEntry* lookup(const std::vector<Lit>& key);
  void insert(const std::vector<Lit>& key, JustCacheEntry entry);

  std::size_t size() const { return slots_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  /// Resident entries in slot order, for persistence (src/solver/store.h).
  struct Exported {
    std::vector<Lit> key;
    JustCacheEntry entry;
  };
  std::vector<Exported> export_entries() const {
    std::vector<Exported> out;
    out.reserve(slots_.size());
    for (const Slot& s : slots_) out.push_back({s.key, s.entry});
    return out;
  }

  void clear() {
    slots_.clear();
    hits_ = misses_ = 0;
    clock_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t hash = 0;
    std::vector<Lit> key;
    JustCacheEntry entry;
    std::uint64_t stamp = 0;
  };

  std::size_t capacity_;
  std::vector<Slot> slots_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace hltg
