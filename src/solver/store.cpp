#include "solver/store.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "solver/solver.h"
#include "util/failpoint.h"

namespace hltg {

namespace {

constexpr std::uint32_t kMarker = 0x44454453;  // "SDED" on disk (LE)
constexpr std::uint32_t kKindMeta = 1;
constexpr std::uint32_t kKindNogood = 2;
constexpr std::uint32_t kKindJust = 3;
constexpr std::uint32_t kKindRelax = 4;
constexpr std::size_t kHeaderBytes = 16;

// ---- little-endian byte stream helpers ---------------------------------

struct ByteSink {
  std::string bytes;

  void put_u8(std::uint8_t v) { bytes.push_back(static_cast<char>(v)); }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_str(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    bytes.append(s);
  }
};

struct ByteSource {
  const unsigned char* p = nullptr;
  std::size_t n = 0;
  std::size_t pos = 0;
  bool fail = false;

  bool get_u8(std::uint8_t* v) {
    if (pos + 1 > n) return fail = true, false;
    *v = p[pos++];
    return true;
  }
  bool get_u32(std::uint32_t* v) {
    if (pos + 4 > n) return fail = true, false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= std::uint32_t{p[pos++]} << (8 * i);
    return true;
  }
  bool get_u64(std::uint64_t* v) {
    if (pos + 8 > n) return fail = true, false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= std::uint64_t{p[pos++]} << (8 * i);
    return true;
  }
  bool get_str(std::string* s) {
    std::uint32_t len = 0;
    if (!get_u32(&len) || pos + len > n) return fail = true, false;
    s->assign(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return true;
  }
  bool done() const { return !fail && pos == n; }
};

// ---- payload encodings -------------------------------------------------

void put_lits(ByteSink& s, const std::vector<Lit>& lits) {
  s.put_u32(static_cast<std::uint32_t>(lits.size()));
  for (const Lit& l : lits) {
    s.put_u32(l.gate);
    s.put_u32(l.cycle);
    s.put_u8(l.value ? 1 : 0);
  }
}

bool get_lits(ByteSource& s, std::vector<Lit>* lits) {
  std::uint32_t count = 0;
  if (!s.get_u32(&count) || count > s.n) return false;
  lits->clear();
  lits->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t gate = 0, cycle = 0;
    std::uint8_t value = 0;
    if (!s.get_u32(&gate) || !s.get_u32(&cycle) || !s.get_u8(&value))
      return false;
    lits->push_back({gate, cycle, value != 0});
  }
  return true;
}

void put_assignments(
    ByteSink& s, const std::vector<std::tuple<GateId, unsigned, bool>>& as) {
  s.put_u32(static_cast<std::uint32_t>(as.size()));
  for (const auto& [gate, cycle, value] : as) {
    s.put_u32(gate);
    s.put_u32(cycle);
    s.put_u8(value ? 1 : 0);
  }
}

bool get_assignments(ByteSource& s,
                     std::vector<std::tuple<GateId, unsigned, bool>>* as) {
  std::uint32_t count = 0;
  if (!s.get_u32(&count) || count > s.n) return false;
  as->clear();
  as->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t gate = 0, cycle = 0;
    std::uint8_t value = 0;
    if (!s.get_u32(&gate) || !s.get_u32(&cycle) || !s.get_u8(&value))
      return false;
    as->emplace_back(gate, cycle, value != 0);
  }
  return true;
}

std::string encode_meta(const DedStoreMeta& m) {
  ByteSink s;
  s.put_u32(m.version);
  s.put_u64(m.design_hash);
  s.put_u64(m.config_hash);
  return std::move(s.bytes);
}

bool decode_meta(ByteSource& s, DedStoreMeta* m) {
  return s.get_u32(&m->version) && s.get_u64(&m->design_hash) &&
         s.get_u64(&m->config_hash) && s.done();
}

std::string encode_just(const JustCache::Exported& j) {
  ByteSink s;
  put_lits(s, j.key);
  s.put_u8(j.entry.success ? 1 : 0);
  put_assignments(s, j.entry.sts_assignments);
  put_assignments(s, j.entry.cpi_assignments);
  return std::move(s.bytes);
}

bool decode_just(ByteSource& s, JustCache::Exported* j) {
  std::uint8_t success = 0;
  if (!get_lits(s, &j->key) || !s.get_u8(&success) ||
      !get_assignments(s, &j->entry.sts_assignments) ||
      !get_assignments(s, &j->entry.cpi_assignments) || !s.done())
    return false;
  j->entry.success = success != 0;
  return true;
}

std::string encode_relax(const RelaxCache::Exported& r) {
  ByteSink s;
  s.put_u32(static_cast<std::uint32_t>(r.key.words.size()));
  s.put_u32(r.key.site_words);
  for (const std::uint64_t w : r.key.words) s.put_u64(w);
  s.put_u8(static_cast<std::uint8_t>(r.result.status));
  s.put_u8(static_cast<std::uint8_t>(r.result.abort));
  s.put_u32(r.result.iterations);
  s.put_u32(r.result.pair_captures);
  s.put_str(r.result.note);
  s.put_u32(static_cast<std::uint32_t>(r.vars.imem.size()));
  for (const std::uint32_t w : r.vars.imem) s.put_u32(w);
  s.put_u32(static_cast<std::uint32_t>(r.vars.imem_fixed.size()));
  for (const std::uint32_t w : r.vars.imem_fixed) s.put_u32(w);
  for (const std::uint32_t w : r.vars.rf_init) s.put_u32(w);
  s.put_u32(static_cast<std::uint32_t>(r.vars.mem_init.size()));
  for (const auto& [addr, val] : r.vars.mem_init) {
    s.put_u32(addr);
    s.put_u32(val);
  }
  return std::move(s.bytes);
}

bool decode_relax(ByteSource& s, RelaxCache::Exported* r) {
  std::uint32_t words = 0;
  if (!s.get_u32(&words) || !s.get_u32(&r->key.site_words) || words > s.n)
    return false;
  r->key.words.clear();
  r->key.words.reserve(words);
  for (std::uint32_t i = 0; i < words; ++i) {
    std::uint64_t w = 0;
    if (!s.get_u64(&w)) return false;
    r->key.words.push_back(w);
  }
  if (r->key.site_words > r->key.words.size()) return false;
  std::uint8_t status = 0, abort = 0;
  if (!s.get_u8(&status) || !s.get_u8(&abort) ||
      !s.get_u32(&r->result.iterations) ||
      !s.get_u32(&r->result.pair_captures) || !s.get_str(&r->result.note))
    return false;
  r->result.status = static_cast<TgStatus>(status);
  r->result.abort = static_cast<AbortReason>(abort);
  std::uint32_t count = 0;
  if (!s.get_u32(&count) || count > s.n) return false;
  r->vars.imem.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i)
    if (!s.get_u32(&r->vars.imem[i])) return false;
  if (!s.get_u32(&count) || count > s.n) return false;
  r->vars.imem_fixed.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i)
    if (!s.get_u32(&r->vars.imem_fixed[i])) return false;
  for (std::uint32_t& w : r->vars.rf_init)
    if (!s.get_u32(&w)) return false;
  if (!s.get_u32(&count) || count > s.n) return false;
  r->vars.mem_init.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t addr = 0, val = 0;
    if (!s.get_u32(&addr) || !s.get_u32(&val)) return false;
    r->vars.mem_init[addr] = val;
  }
  return s.done();
}

// ---- framing -----------------------------------------------------------

std::string frame_record(std::uint32_t kind, const std::string& payload) {
  ByteSink s;
  s.put_u32(kMarker);
  s.put_u32(kind);
  s.put_u32(static_cast<std::uint32_t>(payload.size()));
  s.put_u32(ded_crc32(payload.data(), payload.size()));
  s.bytes.append(payload);
  return std::move(s.bytes);
}

std::uint64_t fnv_words(const std::vector<std::uint64_t>& words) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint64_t w : words) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::uint32_t ded_crc32(const void* data, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void DedSnapshot::merge(const DedSnapshot& other) {
  std::unordered_set<std::uint64_t> have;
  // A hash collision drops an entry, which only costs warmth.
  for (const auto& n : nogoods) have.insert(hash_lits(n) * 3u + 0);
  for (const auto& j : justs) have.insert(hash_lits(j.key) * 3u + 1);
  for (const auto& r : relax) have.insert(fnv_words(r.key.words) * 3u + 2);
  for (const auto& n : other.nogoods)
    if (have.insert(hash_lits(n) * 3u + 0).second) nogoods.push_back(n);
  for (const auto& j : other.justs)
    if (have.insert(hash_lits(j.key) * 3u + 1).second) justs.push_back(j);
  for (const auto& r : other.relax)
    if (have.insert(fnv_words(r.key.words) * 3u + 2).second)
      relax.push_back(r);
}

DedSnapshot export_context(const SolverContext& ctx) {
  DedSnapshot snap;
  snap.nogoods = ctx.nogoods.export_cuts();
  snap.justs = ctx.cache.export_entries();
  snap.relax = ctx.relax.export_entries();
  return snap;
}

void import_context(const DedSnapshot& snap, SolverContext* ctx) {
  for (const auto& n : snap.nogoods) ctx->nogoods.learn(n);
  for (const auto& j : snap.justs) ctx->cache.insert(j.key, j.entry);
  for (const auto& r : snap.relax) ctx->relax.store(r.key, r.result, r.vars);
}

bool save_ded_store(const std::string& path, const DedStoreMeta& meta,
                    const DedSnapshot& snap, std::string* why) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) {
    if (why)
      *why = "cannot create '" + tmp + "': " + std::strerror(errno);
    return false;
  }
  auto fail = [&](const std::string& what) {
    const int err = errno;
    if (why) *why = what + ": " + std::strerror(err);
    std::fclose(f);
    std::remove(tmp.c_str());
    return false;
  };
  auto write_record = [&](std::uint32_t kind, const std::string& payload) {
    const std::string rec = frame_record(kind, payload);
    return failpoint::checked_fwrite(rec.data(), rec.size(), f,
                                     "store.write") == rec.size();
  };

  if (!write_record(kKindMeta, encode_meta(meta)))
    return fail("short write to '" + tmp + "'");
  for (const auto& n : snap.nogoods) {
    ByteSink s;
    put_lits(s, n);
    if (!write_record(kKindNogood, s.bytes))
      return fail("short write to '" + tmp + "'");
  }
  for (const auto& j : snap.justs)
    if (!write_record(kKindJust, encode_just(j)))
      return fail("short write to '" + tmp + "'");
  for (const auto& r : snap.relax)
    if (!write_record(kKindRelax, encode_relax(r)))
      return fail("short write to '" + tmp + "'");

  if (std::fflush(f) != 0) return fail("flush of '" + tmp + "' failed");
  if (failpoint::checked_fsync(fileno(f), "store.fsync") != 0)
    return fail("fsync of '" + tmp + "' failed");
  std::fclose(f);

  if (failpoint::checked_rename(tmp.c_str(), path.c_str(), "store.rename") !=
      0) {
    const int err = errno;
    if (why)
      *why = "rename '" + tmp + "' -> '" + path +
             "' failed: " + std::strerror(err);
    std::remove(tmp.c_str());
    return false;
  }

  // Make the rename itself durable.
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

DedStoreLoad load_ded_store(const std::string& path,
                            std::uint64_t expect_design_hash,
                            std::uint64_t expect_config_hash) {
  DedStoreLoad out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    out.note = "no store file at '" + path + "'";
    return out;
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  std::fclose(f);

  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t n = bytes.size();
  std::size_t pos = 0;
  bool meta_seen = false;
  bool in_garbage = false;
  std::string quarantine;
  DedSnapshot snap;

  auto skip_bytes = [&](std::size_t from, std::size_t len) {
    if (!in_garbage) {
      in_garbage = true;
      ++out.skipped_records;
    }
    out.skipped_bytes += len;
    quarantine.append(bytes, from, len);
  };

  while (pos + kHeaderBytes <= n) {
    ByteSource hdr{p + pos, kHeaderBytes, 0, false};
    std::uint32_t marker = 0, kind = 0, len = 0, crc = 0;
    hdr.get_u32(&marker);
    hdr.get_u32(&kind);
    hdr.get_u32(&len);
    hdr.get_u32(&crc);
    if (marker != kMarker || len > n - pos - kHeaderBytes) {
      // Not a record start (or a torn/corrupt length): resynchronize by
      // scanning byte-wise for the next marker.
      skip_bytes(pos, 1);
      ++pos;
      continue;
    }
    const unsigned char* payload = p + pos + kHeaderBytes;
    const std::size_t rec_bytes = kHeaderBytes + len;
    if (ded_crc32(payload, len) != crc) {
      skip_bytes(pos, rec_bytes);
      pos += rec_bytes;
      continue;
    }
    ByteSource body{payload, len, 0, false};
    bool decoded = false;
    switch (kind) {
      case kKindMeta: {
        DedStoreMeta m;
        if ((decoded = decode_meta(body, &m)) && !meta_seen) {
          meta_seen = true;
          out.meta = m;
        }
        break;
      }
      case kKindNogood: {
        std::vector<Lit> lits;
        if ((decoded = get_lits(body, &lits) && body.done()))
          snap.nogoods.push_back(std::move(lits));
        break;
      }
      case kKindJust: {
        JustCache::Exported j;
        if ((decoded = decode_just(body, &j))) snap.justs.push_back(std::move(j));
        break;
      }
      case kKindRelax: {
        RelaxCache::Exported r;
        if ((decoded = decode_relax(body, &r)))
          snap.relax.push_back(std::move(r));
        break;
      }
      default:
        break;  // unknown kind from a future version: quarantine
    }
    if (!decoded) {
      skip_bytes(pos, rec_bytes);
    } else {
      in_garbage = false;
      ++out.records;
    }
    pos += rec_bytes;
  }
  if (pos < n) skip_bytes(pos, n - pos);  // torn tail

  if (!quarantine.empty()) {
    std::FILE* q = std::fopen((path + ".quarantine").c_str(), "ab");
    if (q) {
      std::fwrite(quarantine.data(), 1, quarantine.size(), q);
      std::fclose(q);
    }
  }

  auto refuse = [&](const std::string& reason) {
    out.ok = false;
    out.snapshot = DedSnapshot{};
    out.note = reason;
    return out;
  };
  if (!meta_seen)
    return refuse("store '" + path + "' has no readable meta record");
  if (out.meta.version != kDedStoreVersion)
    return refuse("store '" + path + "' is format version " +
                  std::to_string(out.meta.version) + ", expected " +
                  std::to_string(kDedStoreVersion));
  if (expect_design_hash != 0 && out.meta.design_hash != 0 &&
      out.meta.design_hash != expect_design_hash)
    return refuse("store '" + path +
                  "' was recorded against a different design");
  if (expect_config_hash != 0 && out.meta.config_hash != 0 &&
      out.meta.config_hash != expect_config_hash)
    return refuse("store '" + path +
                  "' was recorded under a different solver configuration");

  out.ok = true;
  out.snapshot = std::move(snap);
  if (out.skipped_records || out.skipped_bytes)
    out.note = "skipped " + std::to_string(out.skipped_records) +
               " corrupt segment(s), " + std::to_string(out.skipped_bytes) +
               " byte(s) quarantined to '" + path + ".quarantine'";
  return out;
}

}  // namespace hltg
