// Learned-conflict store: bounded LRU of nogoods.
//
// A nogood is a sorted, duplicate-free set of Lits that cannot all hold
// simultaneously - the conflict cut the implication engine extracts when
// propagation hits a contradiction. Because a cut consists only of root
// assignments on a path to a circuit-level contradiction, a nogood is a
// consequence of the controller netlist itself: it stays valid across
// objective sets and across windows (a literal at cycle t exists in any
// window of more than t cycles), so one generator's store prunes every
// later CTRLJUST search of the same campaign worker.
#pragma once

#include <cstdint>
#include <vector>

#include "solver/lit.h"

namespace hltg {

class NogoodStore {
 public:
  explicit NogoodStore(std::size_t capacity = 256, std::size_t max_lits = 8)
      : capacity_(capacity), max_lits_(max_lits) {}

  /// Record a conflict cut. `lits` must be sorted and duplicate-free
  /// (conflict_cut() output already is). Returns true when newly stored;
  /// duplicates, empty cuts and cuts wider than max_lits are dropped.
  bool learn(std::vector<Lit> lits);

  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total nogoods ever accepted (monotone; survives eviction).
  std::uint64_t learned() const { return learned_; }

  const std::vector<Lit>& lits(std::size_t i) const {
    return entries_[i].lits;
  }
  /// LRU bump: call when nogood `i` fired (pruned or forced a value).
  void touch(std::size_t i) { entries_[i].stamp = ++clock_; }
  /// Stable identity of slot `i`'s current occupant (eviction replaces the
  /// occupant in place, so an index alone can go stale across learns).
  std::uint64_t id(std::size_t i) const { return entries_[i].id; }
  /// LRU bump that tolerates staleness: bumps only while slot `i` still
  /// holds the nogood it held at registration time. The watch-based
  /// applier fires from its own literal copies, so this is its only
  /// feedback into the store's eviction order.
  void touch_if(std::size_t i, std::uint64_t expected_id) {
    if (i < entries_.size() && entries_[i].id == expected_id)
      entries_[i].stamp = ++clock_;
  }
  /// Slot filled by the most recent successful learn().
  std::size_t last_index() const { return last_index_; }

  /// When recording is on, every cut newly accepted by learn() is copied
  /// aside for drain_recorded() - the feed a campaign worker publishes to
  /// the shared NogoodBoard between errors. Off (the default) it costs
  /// nothing.
  void set_recording(bool on) { recording_ = on; }
  std::vector<std::vector<Lit>> drain_recorded() {
    return std::move(recorded_);
  }

  /// Resident cuts in slot order, for persistence (src/solver/store.h).
  std::vector<std::vector<Lit>> export_cuts() const {
    std::vector<std::vector<Lit>> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.lits);
    return out;
  }

  void clear() {
    entries_.clear();
    recorded_.clear();
    learned_ = 0;
    clock_ = 0;
    last_index_ = 0;
  }

 private:
  struct Entry {
    std::vector<Lit> lits;
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;
    std::uint64_t id = 0;
  };

  std::size_t capacity_;
  std::size_t max_lits_;
  std::vector<Entry> entries_;
  std::vector<std::vector<Lit>> recorded_;
  bool recording_ = false;
  std::uint64_t learned_ = 0;
  std::uint64_t clock_ = 0;
  std::size_t last_index_ = 0;
};

}  // namespace hltg
