// Watch-based application of learned nogoods (docs/SOLVER.md).
//
// The legacy applier rescans the whole store on every propagation round:
// O(store x lits) literal probes per shadowed assignment, repeated to a
// fixpoint. This watcher transposes the two-watched-literal scheme onto
// nogoods: a nogood !(l1 & ... & lk) is the clause (!l1 | ... | !lk), a
// literal HOLDS when the engine value equals it (clause literal false),
// is BROKEN when the engine value opposes it (clause literal true - the
// nogood is satisfied), and is FREE at X. Each registered nogood watches
// two literals; propagation touches only the nogoods watching a node the
// trail just assigned.
//
// Invariant (checked against MiniSat's argument, restated in nogood
// terms): each watch is on a non-holding literal, OR it is holding and
// the other watch is broken by an assignment at the same level or below.
// Backtracking only turns assigned values into X, which preserves the
// invariant without any undo work - the watcher needs no per-level state
// beyond a trail cursor that the owner clamps after every pop_to.
//
// Freshly learned nogoods are special: at learn time every literal holds
// (they ARE the conflict), so no watch pair exists. They are "parked" and
// scanned linearly - exactly the legacy discipline - until a scan finds
// two non-holding literals to watch. The parked list is tiny (recent
// cuts only), so the rescan cost the watcher removes stays removed.
//
// Fixpoint equivalence: the watcher forces and conflicts on exactly the
// unit/all-held conditions the legacy rescan fires on, at the same
// propagation fixpoints, so CTRLJUST's engine-assisted search takes the
// same decisions either way. The store remains the bounded-LRU source of
// truth across solves; the watcher keeps its own literal copies per solve
// and feeds firings back only as LRU touches (touch_if).
#pragma once

#include <cstdint>
#include <vector>

#include "solver/implication.h"
#include "solver/lit.h"

namespace hltg {

class NogoodStore;

class NogoodWatcher {
 public:
  /// The engine must outlive the watcher. rebuild() must run after every
  /// engine reset() and before the first propagate().
  explicit NogoodWatcher(ImplicationEngine& eng) : eng_(eng) {}

  /// Drop everything and re-register the store's current contents against
  /// the engine's post-reset values. Nogoods with any literal at a cycle
  /// outside the engine's window are skipped: they cannot fire here and
  /// stay valid for wider windows (see nogoods.h).
  void rebuild(const NogoodStore& store);

  /// Register one newly learned nogood mid-solve.
  void add(const std::vector<Lit>& lits, std::size_t store_idx,
           std::uint64_t store_id);

  /// Clamp the trail cursor after the owner ran engine.pop_to(): pass the
  /// post-pop trail size.
  void on_pop(std::size_t trail_size) {
    if (cursor_ > trail_size) cursor_ = trail_size;
  }

  /// Process every trail entry since the last call plus the parked list to
  /// a fixpoint (forcing open literals' negations via imply_from_nogood and
  /// running engine propagation after each firing). Returns false when a
  /// fully-held nogood fired into a conflict (the engine holds the cut).
  /// `hits` counts firings, `comparisons` counts literal probes - the
  /// benchmark's reduction metric against the legacy rescan.
  bool propagate(NogoodStore& store, std::uint64_t* hits,
                 std::uint64_t* comparisons);

  std::size_t registered() const { return ngs_.size(); }

 private:
  enum class LS : std::uint8_t { kFree, kHolds, kBroken };

  struct Watched {
    std::vector<Lit> lits;
    std::vector<ImplicationEngine::NodeId> nodes;  ///< per literal
    int w1 = -1, w2 = -1;  ///< watched literal indices; -1 while parked
    std::size_t store_idx = 0;
    std::uint64_t store_id = 0;
  };

  LS state(const Watched& w, int j, std::uint64_t* comparisons) const {
    ++*comparisons;
    const L3 v = eng_.value(w.nodes[static_cast<std::size_t>(j)]);
    if (v == L3::X) return LS::kFree;
    return ((v == L3::T) == w.lits[static_cast<std::size_t>(j)].value)
               ? LS::kHolds
               : LS::kBroken;
  }

  /// Force the negation of literal `open` (or, with open < 0, of literal 0
  /// of a fully-held nogood - an immediate conflict with the right
  /// antecedents for the cut walker, mirroring the legacy applier).
  bool fire(const Watched& w, int open, NogoodStore& store,
            std::uint64_t* hits);

  /// Scan one parked nogood: establish watches, fire, or leave parked.
  /// Returns false on conflict; sets *fired when it forced a value.
  bool scan_parked(std::uint32_t wi, NogoodStore& store, std::uint64_t* hits,
                   std::uint64_t* comparisons, bool* fired, bool* established);

  void attach(std::uint32_t wi, int lit_idx);

  ImplicationEngine& eng_;
  std::vector<Watched> ngs_;
  std::vector<std::uint32_t> parked_;
  /// Per engine node: indices of nogoods watching it.
  std::vector<std::vector<std::uint32_t>> watch_lists_;
  std::vector<ImplicationEngine::NodeId> touched_;  ///< nodes with lists
  std::size_t cursor_ = 0;
};

}  // namespace hltg
