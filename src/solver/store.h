// Persisted deduction store: crash-safe serialization of a SolverContext.
//
// A campaign-scope context (learned nogoods + justification cache + relax
// memo) is pure, outcome-neutral acceleration state, so it is safe - and
// after PR 5, profitable - to carry it across process lifetimes. What is
// NOT safe is trusting a file that a crash, a torn write, or a full disk
// may have mangled, or that was produced by a different design or solver
// configuration. This module provides both halves:
//
//  File format (docs/ROBUSTNESS.md):
//    A flat sequence of self-delimiting records,
//        u32 marker | u32 kind | u32 length | u32 crc32 | payload[length]
//    all little-endian, crc32 covering the payload only. Record kinds:
//        1  meta    (format version, design hash, solver-config hash)
//        2  nogood  (one learned cut)
//        3  just    (one justification-cache entry)
//        4  relax   (one relax-memo entry)
//    The first valid record must be a meta record; it gates the whole
//    load on version + design hash + config hash.
//
//  Writing is atomic: serialize to `path.tmp`, fsync, rename over `path`,
//  fsync the directory. A crash at any point leaves either the old store
//  or the new one, never a mix. The writer goes through the failpoint
//  hooks (sites "store.write", "store.fsync", "store.rename") so the
//  crash-recovery tests can prove that claim rather than assume it.
//
//  Reading is tolerant: a record whose CRC, framing, or version check
//  fails is skipped - the reader resynchronizes by scanning for the next
//  marker - and quarantined (appended to `path.quarantine`) for post-
//  mortem, with counts reported to the caller. Because every record is an
//  independent deduction, dropping any subset still yields a valid (just
//  colder) warm start.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "solver/justcache.h"
#include "solver/nogoods.h"
#include "solver/relax_cache.h"

namespace hltg {

struct SolverContext;

/// Everything a SolverContext persists or exchanges between workers.
struct DedSnapshot {
  std::vector<std::vector<Lit>> nogoods;
  std::vector<JustCache::Exported> justs;
  std::vector<RelaxCache::Exported> relax;

  bool empty() const {
    return nogoods.empty() && justs.empty() && relax.empty();
  }
  std::size_t entries() const {
    return nogoods.size() + justs.size() + relax.size();
  }
  /// Content-deduplicating union (existing entries win) - how the
  /// per-worker snapshots of a sharded campaign are combined before
  /// saving. Merge order must be deterministic (worker id) for the saved
  /// file to be reproducible.
  void merge(const DedSnapshot& other);
};

/// Snapshot of the resident deduction state of `ctx`.
DedSnapshot export_context(const SolverContext& ctx);

/// Replay `snap` into `ctx` (learn/insert/store; capacity limits apply).
void import_context(const DedSnapshot& snap, SolverContext* ctx);

inline constexpr std::uint32_t kDedStoreVersion = 2;

/// Provenance stamp gating a load. Hash 0 means "not validated" (tests,
/// tools); campaigns always pass real hashes.
struct DedStoreMeta {
  std::uint32_t version = kDedStoreVersion;
  std::uint64_t design_hash = 0;
  std::uint64_t config_hash = 0;
};

struct DedStoreLoad {
  bool ok = false;  ///< meta present and matching; snapshot usable
  DedSnapshot snapshot;
  DedStoreMeta meta;              ///< as read from the file, when readable
  std::size_t records = 0;        ///< records decoded into the snapshot
  std::size_t skipped_records = 0;  ///< corrupt records quarantined
  std::size_t skipped_bytes = 0;    ///< bytes covered by skips + resync
  std::string note;  ///< refusal reason, or skip summary when ok
};

/// Atomic save (see header comment). On failure returns false with *why
/// set; `path` is untouched (the temp file is removed best-effort).
bool save_ded_store(const std::string& path, const DedStoreMeta& meta,
                    const DedSnapshot& snap, std::string* why);

/// Tolerant load. Refuses (ok == false, empty snapshot) when the file is
/// missing, its meta record is unreadable, its version differs, or the
/// expected hashes (when nonzero) do not match the stored ones.
DedStoreLoad load_ded_store(const std::string& path,
                            std::uint64_t expect_design_hash,
                            std::uint64_t expect_config_hash);

/// CRC-32 (IEEE, reflected) of `n` bytes - exposed for tests that craft
/// corrupt store images.
std::uint32_t ded_crc32(const void* data, std::size_t n);

}  // namespace hltg
