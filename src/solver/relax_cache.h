// DPRELAX memo: bounded LRU over definitive backsolve results.
//
// Learning hard nogoods from DPRELAX failures would be unsound: the
// backsolve is incomplete ("may fail to find a solution even if there is
// one"), so a failure is not a proof, and pruning CTRLJUST with it would
// change which witness the search lands on - diverging campaign rows.
// What IS sound is memoization: a DpRelax::solve call is a pure function
// of its full subproblem (rng seed, iteration/depth caps, constraint set
// including provenance, entry-point free variables, and the injected
// error), so replaying a recorded definitive result - success or failure,
// including the final variable state - is byte-identical to recomputing
// it. The cached failures are this cache's "learned cuts": repeat visits
// to a plan (shape-duplicated paths within a window, warm-started reruns
// replaying the same derived seeds) are answered without a single
// relaxation sweep.
//
// The window is NOT part of the key, but it IS mixed into the derived seed
// (core/tg.h relax_plan_seed), which the key serializes - so entries never
// transfer between windows. The causality argument for window-independence
// (constraints live at cycles below the window; the simulation is causal)
// holds everywhere EXCEPT one margin: the runaway-PC cap in
// DpRelax::set_instr_word scales with the window, so a backsolve that
// walks near the cap can genuinely depend on it. Seed separation closes
// that hole without widening the key.
//
// Results that aborted on a budget (abort != kNone) are never stored: they
// depend on how much budget was left, which is caller state, not
// subproblem state.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dprelax.h"
#include "core/objectives.h"
#include "sim/proc_sim.h"

namespace hltg {

class RelaxCache {
 public:
  explicit RelaxCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Serialized subproblem identity (exact, not just a hash). The injected
  /// error is serialized LAST, and `site_words` records how many trailing
  /// words it occupies, so the injection-free core of two keys can be
  /// compared without re-deriving it - the instrumentation behind the
  /// cross-site miss counter below.
  struct Key {
    std::vector<std::uint64_t> words;
    std::uint32_t site_words = 0;
    bool operator==(const Key&) const = default;
  };

  /// Build the key for one solve call. `vars` must be the ENTRY state
  /// (before solve mutates it).
  static Key make_key(const DpRelaxConfig& cfg, const RelaxVars& vars,
                      const std::vector<RelaxConstraint>& constraints,
                      const ErrorInjection& inj);

  /// Probe. On a hit, *result and *vars are overwritten with the recorded
  /// outcome and final variable state. Counts a lookup either way. A miss
  /// whose injection-free core matches a resident entry (only the
  /// injection-site suffix differs) is additionally counted as a
  /// cross-site miss - the reuse that keying site-independent subproblems
  /// separately would unlock (docs/SOLVER.md).
  bool find(const Key& key, DpRelaxResult* result, RelaxVars* vars);

  /// Record a definitive result (ignored when result.abort != kNone or
  /// capacity is zero). `vars` is the FINAL state after solve.
  void store(const Key& key, const DpRelaxResult& result,
             const RelaxVars& vars);

  void clear() {
    entries_.clear();
    hits_ = lookups_ = cross_site_misses_ = 0;
    clock_ = 0;
  }

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t lookups() const { return lookups_; }
  /// Misses where a resident entry matched everything but the injection
  /// site (subset of lookups - hits).
  std::uint64_t cross_site_misses() const { return cross_site_misses_; }
  /// Cached definitive failures currently resident - the "learned cuts".
  std::size_t failure_entries() const;

  /// Resident entries, for persistence (src/solver/store.h). Order is the
  /// slot order, which is deterministic for a deterministic campaign.
  struct Exported {
    Key key;
    DpRelaxResult result;
    RelaxVars vars;
  };
  std::vector<Exported> export_entries() const;

 private:
  struct Entry {
    Key key;
    std::uint64_t hash = 0;
    DpRelaxResult result;
    RelaxVars vars;
    std::uint64_t stamp = 0;
  };

  static std::uint64_t hash_key(const Key& k);

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t lookups_ = 0;
  std::uint64_t cross_site_misses_ = 0;
  std::uint64_t clock_ = 0;
};

}  // namespace hltg
