#include "solver/probe_batch.h"

#include <algorithm>
#include <cassert>

#include "gatenet/evalw.h"

namespace hltg {

namespace {
/// Cone cache bound: probe sets repeat heavily within one solve (the same
/// objectives backtrace to the same variables), but a pathological caller
/// must not grow the cache without limit.
constexpr std::size_t kConeCacheCap = 64;
}  // namespace

ProbeBatch::ProbeBatch(const GateNet& gn, unsigned cycles, ProbeBatchConfig cfg)
    : gn_(gn), cycles_(cycles), cfg_(cfg) {
  chunk_ = cfg_.serial ? 1 : std::min(resolve_lanes(cfg_.lanes), kMaxLanes);
  if (chunk_ == 0) chunk_ = 1;
}

const ProbeBatch::Cone& ProbeBatch::cone_for(const std::vector<ProbeCand>& cands,
                                             const ProbeAnchor* anchor) {
  key_.clear();
  for (const ProbeCand& c : cands) key_.push_back(c.gate);
  if (anchor) key_.push_back(anchor->gate);
  std::sort(key_.begin(), key_.end());
  key_.erase(std::unique(key_.begin(), key_.end()), key_.end());
  for (const Cone& c : cones_)
    if (c.key == key_) return c;

  if (cones_.size() >= kConeCacheCap) cones_.clear();
  Cone cone;
  cone.key = key_;
  // Forward closure over fanouts; DFFs are crossed like any gate (the cone
  // is time-collapsed: one gate set valid for every cycle of the sweep).
  std::vector<char> member(gn_.num_gates(), 0);
  std::vector<GateId> queue(key_);
  for (GateId g : key_) member[g] = 1;
  const auto& fanouts = gn_.fanouts();
  while (!queue.empty()) {
    const GateId u = queue.back();
    queue.pop_back();
    for (GateId f : fanouts[u])
      if (!member[f]) {
        member[f] = 1;
        queue.push_back(f);
      }
  }
  for (GateId g : gn_.topo_order()) {
    if (!member[g]) continue;
    const GateKind k = gn_.gate(g).kind;
    if (k != GateKind::kVar && k != GateKind::kDff) cone.eval.push_back(g);
  }
  for (GateId d : gn_.dffs())
    if (member[d]) cone.dffs.emplace_back(d, gn_.gate(d).fanin[0]);
  cones_.push_back(std::move(cone));
  return cones_.back();
}

void ProbeBatch::run(const ControllerWindow& win,
                     const std::vector<CtrlObjective>& objectives,
                     const std::vector<ProbeCand>& cands,
                     std::vector<ProbeOutcome>* out) {
  run([&win](GateId g, unsigned t) { return win.value(g, t); }, objectives,
      cands, out);
}

void ProbeBatch::run(const BaseFn& base,
                     const std::vector<CtrlObjective>& objectives,
                     const std::vector<ProbeCand>& cands,
                     std::vector<ProbeOutcome>* out) {
  run_impl(base, objectives, nullptr, cands, out);
}

void ProbeBatch::run(const BaseFn& base,
                     const std::vector<CtrlObjective>& objectives,
                     const ProbeAnchor& anchor,
                     const std::vector<ProbeCand>& cands,
                     std::vector<ProbeOutcome>* out) {
  run_impl(base, objectives, &anchor, cands, out);
}

void ProbeBatch::run_impl(const BaseFn& base,
                          const std::vector<CtrlObjective>& objectives,
                          const ProbeAnchor* anchor,
                          const std::vector<ProbeCand>& cands,
                          std::vector<ProbeOutcome>* out) {
  out->assign(cands.size(), ProbeOutcome{});
  if (cands.empty()) return;
  // The search only ever reads cycles up to the latest objective; later
  // cycles cannot doom anything (same argument as the justification cache's
  // window independence, solver/justcache.h).
  unsigned tmax = 0;
  for (const CtrlObjective& o : objectives)
    tmax = std::max(tmax, o.cycle + 1);
  tmax = std::min(tmax, cycles_);
  if (tmax == 0) return;

  const Cone& cone = cone_for(cands, anchor);
  const std::size_t pairs = cands.size() * 2;
  stats_.lanes += pairs;
  for (std::size_t p0 = 0; p0 < pairs; p0 += chunk_) {
    const std::size_t p1 = std::min(pairs, p0 + chunk_);
    sweep_span(base, objectives, anchor, cands, cone, p0, p1, tmax, out);
    ++stats_.batches;
  }
}

void ProbeBatch::sweep_span(const BaseFn& base,
                            const std::vector<CtrlObjective>& objectives,
                            const ProbeAnchor* anchor,
                            const std::vector<ProbeCand>& cands,
                            const Cone& cone, std::size_t p0, std::size_t p1,
                            unsigned tmax, std::vector<ProbeOutcome>* out) {
  const unsigned lanes = static_cast<unsigned>(p1 - p0);
  const unsigned words = lane_words(lanes);
  const std::size_t ngates = gn_.num_gates();
  ones_.resize(ngates * words);
  zeros_.resize(ngates * words);
  doomed_.assign(words, 0);
  carry1_.resize(cone.dffs.size() * words);
  carry0_.resize(cone.dffs.size() * words);
  if (cfg_.count_implied) implied_.assign(lanes, 0);

  for (unsigned t = 0; t < tmax; ++t) {
    // Broadcast the base trajectory into every lane. Lanes past `lanes`
    // simply carry the base and are never read back.
    for (GateId g = 0; g < ngates; ++g) {
      const L3 v = base(g, t);
      std::fill_n(ones_.data() + std::size_t{g} * words, words,
                  v == L3::T ? ~std::uint64_t{0} : 0);
      std::fill_n(zeros_.data() + std::size_t{g} * words, words,
                  v == L3::F ? ~std::uint64_t{0} : 0);
    }
    // Cone DFFs diverge from the base once a candidate fires: restore the
    // lanes latched from the previous cycle's D values. (Cycle 0 is the
    // reset state, lane-uniform by construction.)
    if (t > 0) {
      for (std::size_t i = 0; i < cone.dffs.size(); ++i) {
        std::copy_n(carry1_.data() + i * words, words,
                    ones_.data() + std::size_t{cone.dffs[i].first} * words);
        std::copy_n(carry0_.data() + i * words, words,
                    zeros_.data() + std::size_t{cone.dffs[i].first} * words);
      }
    }
    // Anchor override: every lane of an anchored sweep carries the branch
    // assignment on top of the base (the anchor must be base-free).
    if (anchor && anchor->cycle == t) {
      assert(base(anchor->gate, t) == L3::X && "probe anchor must be free");
      std::uint64_t* plane = (anchor->value ? ones_ : zeros_).data() +
                             std::size_t{anchor->gate} * words;
      std::fill_n(plane, words, ~std::uint64_t{0});
    }
    // Candidate overrides: pair p assigns cands[p/2].gate := (p & 1) at its
    // cycle, in lane p - p0 only.
    for (std::size_t p = p0; p < p1; ++p) {
      const ProbeCand& c = cands[p / 2];
      if (c.cycle != t) continue;
      assert(base(c.gate, t) == L3::X && "probe candidates must be free");
      std::uint64_t* plane =
          ((p & 1) ? ones_ : zeros_).data() + std::size_t{c.gate} * words;
      const std::size_t lane = p - p0;
      plane[lane >> 6] |= std::uint64_t{1} << (lane & 63);
    }
    eval_gates3w(gn_, cone.eval.data(), cone.eval.size(), ones_.data(),
                 zeros_.data(), words);
    // A lane is doomed the moment its forward consequences contradict ANY
    // base-determined fact - an objective literal, or any value the
    // caller's implication state (forward window or backward engine
    // deduction) has already fixed. Checking every determined cone gate
    // instead of just the objective literals is what lets the probe see
    // conflicts the serial search only finds after descending.
    for (GateId g : cone.eval) {
      const L3 bv = base(g, t);
      if (bv == L3::X) continue;
      const std::uint64_t* viol =
          (bv == L3::T ? zeros_ : ones_).data() + std::size_t{g} * words;
      for (unsigned w = 0; w < words; ++w) doomed_[w] |= viol[w];
    }
    // Cone DFFs carry lane-diverged state: a carried value contradicting
    // the base-determined state bit is the same conflict one cycle later.
    for (const auto& [dff, din] : cone.dffs) {
      const L3 bv = base(dff, t);
      if (bv == L3::X) continue;
      const std::uint64_t* viol =
          (bv == L3::T ? zeros_ : ones_).data() + std::size_t{dff} * words;
      for (unsigned w = 0; w < words; ++w) doomed_[w] |= viol[w];
    }
    for (const CtrlObjective& o : objectives) {
      if (o.cycle != t) continue;
      const std::uint64_t* viol =
          (o.value ? zeros_ : ones_).data() + std::size_t{o.gate} * words;
      for (unsigned w = 0; w < words; ++w) doomed_[w] |= viol[w];
    }
    if (cfg_.count_implied) {
      for (GateId g : cone.eval) {
        const std::uint64_t* o1 = ones_.data() + std::size_t{g} * words;
        const std::uint64_t* z1 = zeros_.data() + std::size_t{g} * words;
        for (unsigned w = 0; w < words; ++w) {
          std::uint64_t m = o1[w] | z1[w];
          while (m) {
            const unsigned b = static_cast<unsigned>(__builtin_ctzll(m));
            m &= m - 1;
            const std::size_t lane = std::size_t{w} * 64 + b;
            if (lane < lanes) ++implied_[lane];
          }
        }
      }
    }
    // Latch cone-DFF D inputs for the next cycle's restore.
    if (t + 1 < tmax) {
      for (std::size_t i = 0; i < cone.dffs.size(); ++i) {
        std::copy_n(ones_.data() + std::size_t{cone.dffs[i].second} * words,
                    words, carry1_.data() + i * words);
        std::copy_n(zeros_.data() + std::size_t{cone.dffs[i].second} * words,
                    words, carry0_.data() + i * words);
      }
    }
  }

  for (std::size_t p = p0; p < p1; ++p) {
    const std::size_t lane = p - p0;
    ProbeOutcome& oc = (*out)[p / 2];
    oc.doomed[p & 1] = (doomed_[lane >> 6] >> (lane & 63)) & 1;
    if (cfg_.count_implied)
      oc.implied[p & 1] = implied_[static_cast<std::size_t>(lane)];
  }
}

}  // namespace hltg
