// Implication engine over the unrolled controller: event-driven 3-valued
// deduction with an implication graph.
//
// The engine owns one node per (gate, cycle) of a T-cycle window and
// propagates *forced* values in both directions through every gate:
// forward (fanins determine the output) and backward (a demanded output
// pins fanins - AND=1 forces every fanin to 1; AND=0 with one unassigned
// fanin and the rest 1 forces that fanin to 0; DFFs couple cycle t to
// cycle t-1). This is the FAN/SOCRATES-style deduction the plain window
// imply() of core/unroll.h cannot do: CTRLJUST asserts its objectives,
// calls propagate(), and only branches on decision variables that are
// still genuinely free.
//
// Wide AND/OR gates (the decoder's one-hot planes) use two-watched-fanin
// wakeups: a gate instance is only re-examined when a *controlling* value
// arrives on any fanin, when its output is assigned, or when one of its two
// watched (not-yet-identity) fanins is assigned - the classic two-watched-
// literal scheme transposed to gates, so a 40-input OR plane costs O(1)
// per irrelevant fanin assignment instead of a rescan.
//
// Every forced value records its antecedent nodes, forming an implication
// graph. On contradiction, conflict_cut() walks the graph back to the root
// assignments (decisions and asserted objectives) actually on a path to
// the conflict - the learned nogood handed to the conflict store.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gatenet/gatenet.h"
#include "solver/lit.h"
#include "util/logic3.h"

namespace hltg {

class ImplicationEngine {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kNoNode = static_cast<NodeId>(-1);

  ImplicationEngine(const GateNet& gn, unsigned cycles);

  unsigned cycles() const { return T_; }
  const GateNet& net() const { return gn_; }

  NodeId node(GateId g, unsigned t) const {
    return static_cast<NodeId>(t) * n_ + g;
  }
  GateId gate_of(NodeId nd) const { return nd % n_; }
  unsigned cycle_of(NodeId nd) const { return nd / n_; }

  L3 value(GateId g, unsigned t) const { return val_[node(g, t)]; }
  L3 value(NodeId nd) const { return val_[nd]; }

  /// Rewind everything (all levels, all roots) back to the reset-state
  /// fixpoint computed at construction.
  void reset();

  /// Assert a root value (an objective, or a decision when `decision`) at
  /// the current level. Returns false on an immediate contradiction.
  bool assert_lit(GateId g, unsigned t, bool v, bool decision);

  /// Force a node because all other literals of a learned nogood hold.
  /// `antecedents` are the nodes of those literals. False on contradiction.
  bool imply_from_nogood(GateId g, unsigned t, bool v,
                         const std::vector<NodeId>& antecedents);

  /// Run deduction to a fixpoint. False on conflict (cut available).
  bool propagate();

  /// Open a new backtrack level (call before a decision's assert_lit).
  void push_level();
  /// Undo every assignment above `level` and clear any conflict.
  void pop_to(unsigned level);
  unsigned level() const { return static_cast<unsigned>(trail_lim_.size()); }

  bool in_conflict() const { return conflict_; }

  /// Root literals (decisions + asserted objectives) the last conflict
  /// depends on - the implication-graph cut. Sorted, duplicate-free.
  std::vector<Lit> conflict_cut() const;

  /// Is the node's value forward-implied by its fanins' current values?
  /// (kVar, constants and cycle-0 DFFs are justified by definition.)
  bool justified(NodeId nd) const;

  /// Root- and backward-assigned nodes - the superset of the J-frontier.
  /// Entries may be justified by now; callers re-check with justified().
  const std::vector<NodeId>& frontier() const { return frontier_; }

  /// Assigned (gate, cycle, value) triples over kVar gates, in (cycle,
  /// gate) order - the witness of a completed search.
  std::vector<Lit> var_assignments() const;

  /// Forced (non-root) assignments made since construction/reset.
  std::uint64_t propagations() const { return propagations_; }

  /// The assignment trail in chronological order (pop_to truncates it).
  /// The nogood watcher keys its wake-ups off new trail entries; anything
  /// else should treat this as read-only diagnostics.
  const std::vector<NodeId>& trail() const { return trail_; }

 private:
  enum class Reason : std::uint8_t {
    kUnset,
    kReset,     ///< implied by the reset fixpoint (unconditional)
    kRoot,      ///< decision or asserted objective
    kForward,   ///< fanins determined the value (justified by construction)
    kBackward,  ///< demanded by a fanout (may still need justification)
    kNogood,    ///< forced by a learned nogood (antecedents recorded)
  };

  struct NodeInfo {
    Reason reason = Reason::kUnset;
    std::uint32_t ante_ofs = 0;
    std::uint16_t ante_len = 0;
  };

  bool assign(NodeId nd, L3 v, Reason r, const NodeId* ante,
              std::size_t ante_n);
  void fail(NodeId nd, const NodeId* ante, std::size_t ante_n);

  /// Full local deduction of one gate instance (both directions).
  bool deduce_gate(GateId g, unsigned t);
  bool deduce_dff(GateId d, unsigned t);
  /// Event filter: called when fanin `idx` of (g, t) was assigned. Runs the
  /// watched-fanin protocol for wide AND/OR, full deduction otherwise.
  bool wake_from_fanin(GateId g, unsigned t, unsigned idx);

  int watch_slot(GateId g) const { return watch_slot_[g]; }
  std::uint16_t& watch(GateId g, unsigned t, int which) {
    return watches_[(static_cast<std::size_t>(watch_slot_[g]) * T_ + t) * 2 +
                    which];
  }

  const GateNet& gn_;
  unsigned T_;
  std::uint32_t n_;

  std::vector<L3> val_;
  std::vector<NodeInfo> info_;
  std::vector<NodeId> ante_pool_;
  std::vector<NodeId> trail_;
  std::size_t qhead_ = 0;

  struct LevelMark {
    std::size_t trail, pool, frontier;
  };
  std::vector<LevelMark> trail_lim_;
  LevelMark base_{};  ///< marks at the end of the reset fixpoint

  std::vector<NodeId> frontier_;

  /// Watched-fanin slots for AND/OR gates with >= kWatchMinFanin fanins.
  static constexpr unsigned kWatchMinFanin = 3;
  std::vector<int> watch_slot_;       ///< per gate; -1 = unwatched
  std::vector<std::uint16_t> watches_;

  bool conflict_ = false;
  std::vector<NodeId> conflict_nodes_;
  /// Root literal that clashed with an already-assigned node; it never made
  /// it into the graph, so conflict_cut() adds it explicitly.
  Lit pending_root_{};
  bool have_pending_ = false;

  std::uint64_t propagations_ = 0;
  mutable std::vector<std::uint8_t> mark_;  ///< scratch for conflict_cut
};

}  // namespace hltg
