#include "solver/implication.h"

#include <algorithm>
#include <cassert>

namespace hltg {

namespace {
constexpr L3 controlling(GateKind k) {
  return k == GateKind::kAnd ? L3::F : L3::T;
}
constexpr L3 identity_of(GateKind k) {
  return k == GateKind::kAnd ? L3::T : L3::F;
}
}  // namespace

ImplicationEngine::ImplicationEngine(const GateNet& gn, unsigned cycles)
    : gn_(gn), T_(cycles), n_(static_cast<std::uint32_t>(gn.num_gates())) {
  val_.assign(static_cast<std::size_t>(T_) * n_, L3::X);
  info_.assign(val_.size(), {});
  mark_.assign(val_.size(), 0);

  watch_slot_.assign(n_, -1);
  int slots = 0;
  for (GateId g = 0; g < n_; ++g) {
    const Gate& gate = gn_.gate(g);
    if ((gate.kind == GateKind::kAnd || gate.kind == GateKind::kOr) &&
        gate.fanin.size() >= kWatchMinFanin)
      watch_slot_[g] = slots++;
  }
  watches_.assign(static_cast<std::size_t>(slots) * T_ * 2, 0);
  for (GateId g = 0; g < n_; ++g)
    if (watch_slot_[g] >= 0)
      for (unsigned t = 0; t < T_; ++t) {
        watch(g, t, 0) = 0;
        watch(g, t, 1) = 1;
      }

  // Reset fixpoint: constants everywhere, DFF reset values at cycle 0.
  for (unsigned t = 0; t < T_; ++t)
    for (GateId g = 0; g < n_; ++g) {
      const Gate& gate = gn_.gate(g);
      if (gate.kind == GateKind::kConst0)
        assign(node(g, t), L3::F, Reason::kReset, nullptr, 0);
      else if (gate.kind == GateKind::kConst1)
        assign(node(g, t), L3::T, Reason::kReset, nullptr, 0);
      else if (gate.kind == GateKind::kDff && t == 0)
        assign(node(g, t), l3_from_bool(gate.reset_value), Reason::kReset,
               nullptr, 0);
    }
  const bool ok = propagate();
  assert(ok && "reset state is contradictory");
  (void)ok;
  // Everything below base_ is unconditional and survives reset().
  base_ = {trail_.size(), ante_pool_.size(), frontier_.size()};
  propagations_ = 0;
}

void ImplicationEngine::reset() {
  trail_lim_.clear();
  while (trail_.size() > base_.trail) {
    const NodeId nd = trail_.back();
    trail_.pop_back();
    val_[nd] = L3::X;
    info_[nd].reason = Reason::kUnset;
  }
  ante_pool_.resize(base_.pool);
  frontier_.resize(base_.frontier);
  qhead_ = trail_.size();
  conflict_ = false;
  conflict_nodes_.clear();
  have_pending_ = false;
  propagations_ = 0;
}

void ImplicationEngine::push_level() {
  trail_lim_.push_back({trail_.size(), ante_pool_.size(), frontier_.size()});
}

void ImplicationEngine::pop_to(unsigned level) {
  if (level >= trail_lim_.size()) {
    conflict_ = false;
    conflict_nodes_.clear();
    have_pending_ = false;
    qhead_ = trail_.size();
    return;
  }
  const LevelMark m = trail_lim_[level];
  trail_lim_.resize(level);
  while (trail_.size() > m.trail) {
    const NodeId nd = trail_.back();
    trail_.pop_back();
    val_[nd] = L3::X;
    info_[nd].reason = Reason::kUnset;
  }
  ante_pool_.resize(m.pool);
  frontier_.resize(m.frontier);
  qhead_ = trail_.size();
  conflict_ = false;
  conflict_nodes_.clear();
  have_pending_ = false;
}

void ImplicationEngine::fail(NodeId nd, const NodeId* ante,
                             std::size_t ante_n) {
  conflict_ = true;
  conflict_nodes_.clear();
  conflict_nodes_.push_back(nd);
  conflict_nodes_.insert(conflict_nodes_.end(), ante, ante + ante_n);
}

bool ImplicationEngine::assign(NodeId nd, L3 v, Reason r, const NodeId* ante,
                               std::size_t ante_n) {
  if (val_[nd] == v) return true;
  if (val_[nd] != L3::X) {
    fail(nd, ante, ante_n);
    return false;
  }
  val_[nd] = v;
  NodeInfo& ni = info_[nd];
  ni.reason = r;
  ni.ante_ofs = static_cast<std::uint32_t>(ante_pool_.size());
  ni.ante_len = static_cast<std::uint16_t>(ante_n);
  ante_pool_.insert(ante_pool_.end(), ante, ante + ante_n);
  trail_.push_back(nd);
  if (r != Reason::kRoot && r != Reason::kReset) ++propagations_;
  // J-frontier bookkeeping: a value not derived forward from fanins may
  // still need justification by the search.
  if (r == Reason::kRoot || r == Reason::kBackward || r == Reason::kNogood) {
    const Gate& gate = gn_.gate(gate_of(nd));
    const bool trivially_just =
        gate.kind == GateKind::kVar || gate.kind == GateKind::kConst0 ||
        gate.kind == GateKind::kConst1 ||
        (gate.kind == GateKind::kDff && cycle_of(nd) == 0);
    if (!trivially_just) frontier_.push_back(nd);
  }
  return true;
}

bool ImplicationEngine::assert_lit(GateId g, unsigned t, bool v,
                                   bool decision) {
  (void)decision;
  const NodeId nd = node(g, t);
  const L3 lv = l3_from_bool(v);
  if (val_[nd] == lv) return true;
  if (val_[nd] != L3::X) {
    pending_root_ = {g, t, v};
    have_pending_ = true;
    fail(nd, nullptr, 0);
    return false;
  }
  return assign(nd, lv, Reason::kRoot, nullptr, 0);
}

bool ImplicationEngine::imply_from_nogood(
    GateId g, unsigned t, bool v, const std::vector<NodeId>& antecedents) {
  return assign(node(g, t), l3_from_bool(v), Reason::kNogood,
                antecedents.data(), antecedents.size());
}

bool ImplicationEngine::deduce_dff(GateId d, unsigned t) {
  if (t == 0) return true;  // reset value, set unconditionally
  const NodeId q = node(d, t);
  const NodeId dn = node(gn_.gate(d).fanin[0], t - 1);
  if (val_[dn] != L3::X && !assign(q, val_[dn], Reason::kForward, &dn, 1))
    return false;
  if (val_[q] != L3::X && !assign(dn, val_[q], Reason::kBackward, &q, 1))
    return false;
  return true;
}

bool ImplicationEngine::deduce_gate(GateId g, unsigned t) {
  const Gate& gate = gn_.gate(g);
  const NodeId out = node(g, t);
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return true;
    case GateKind::kDff:
      return deduce_dff(g, t);
    case GateKind::kBuf:
    case GateKind::kNot: {
      const bool inv = gate.kind == GateKind::kNot;
      const NodeId in = node(gate.fanin[0], t);
      const L3 iv = val_[in];
      const L3 ov = val_[out];
      if (iv != L3::X &&
          !assign(out, inv ? l3_not(iv) : iv, Reason::kForward, &in, 1))
        return false;
      if (ov != L3::X &&
          !assign(in, inv ? l3_not(ov) : ov, Reason::kBackward, &out, 1))
        return false;
      return true;
    }
    case GateKind::kXor: {
      const NodeId a = node(gate.fanin[0], t);
      const NodeId b = node(gate.fanin[1], t);
      const L3 av = val_[a], bv = val_[b], ov = val_[out];
      if (av != L3::X && bv != L3::X) {
        const NodeId ante[2] = {a, b};
        if (!assign(out, l3_xor(av, bv), Reason::kForward, ante, 2))
          return false;
      }
      if (ov != L3::X && av != L3::X) {
        const NodeId ante[2] = {out, a};
        if (!assign(b, l3_xor(ov, av), Reason::kBackward, ante, 2))
          return false;
      }
      if (ov != L3::X && bv != L3::X) {
        const NodeId ante[2] = {out, b};
        if (!assign(a, l3_xor(ov, bv), Reason::kBackward, ante, 2))
          return false;
      }
      return true;
    }
    case GateKind::kAnd:
    case GateKind::kOr: {
      const L3 c = controlling(gate.kind);
      const L3 id = identity_of(gate.kind);
      unsigned x_count = 0;
      NodeId x_node = kNoNode;
      NodeId c_node = kNoNode;
      for (GateId in : gate.fanin) {
        const NodeId ni = node(in, t);
        const L3 v = val_[ni];
        if (v == L3::X) {
          ++x_count;
          x_node = ni;
        } else if (v == c && c_node == kNoNode) {
          c_node = ni;
        }
      }
      if (c_node != kNoNode) {
        if (!assign(out, c, Reason::kForward, &c_node, 1)) return false;
      } else if (x_count == 0) {
        std::vector<NodeId> ante;
        ante.reserve(gate.fanin.size());
        for (GateId in : gate.fanin) ante.push_back(node(in, t));
        if (!assign(out, id, Reason::kForward, ante.data(), ante.size()))
          return false;
      }
      const L3 ov = val_[out];
      if (ov == id) {
        // AND=1 (OR=0): every fanin must carry the identity value.
        for (GateId in : gate.fanin) {
          const NodeId ni = node(in, t);
          if (!assign(ni, id, Reason::kBackward, &out, 1)) return false;
        }
      } else if (ov == c && c_node == kNoNode && x_count == 1) {
        // AND=0 (OR=1) with a single free fanin: it must be controlling.
        std::vector<NodeId> ante;
        ante.reserve(gate.fanin.size());
        ante.push_back(out);
        for (GateId in : gate.fanin) {
          const NodeId ni = node(in, t);
          if (ni != x_node) ante.push_back(ni);
        }
        if (!assign(x_node, c, Reason::kBackward, ante.data(), ante.size()))
          return false;
      }
      return true;
    }
  }
  return true;
}

bool ImplicationEngine::wake_from_fanin(GateId g, unsigned t, unsigned idx) {
  const Gate& gate = gn_.gate(g);
  if (watch_slot_[g] < 0) return deduce_gate(g, t);
  const L3 c = controlling(gate.kind);
  const L3 id = identity_of(gate.kind);
  const L3 v = val_[node(gate.fanin[idx], t)];
  if (v == c) {
    // A controlling fanin forces the output immediately.
    const NodeId cn = node(gate.fanin[idx], t);
    return assign(node(g, t), c, Reason::kForward, &cn, 1);
  }
  if (v != id) return true;  // fanin went back to X (cannot happen here)
  std::uint16_t& w0 = watch(g, t, 0);
  std::uint16_t& w1 = watch(g, t, 1);
  if (idx != w0 && idx != w1) return true;  // unwatched identity: no-op
  std::uint16_t& moved = idx == w0 ? w0 : w1;
  const std::uint16_t other = idx == w0 ? w1 : w0;
  for (std::uint16_t j = 0; j < gate.fanin.size(); ++j) {
    if (j == other || j == idx) continue;
    if (val_[node(gate.fanin[j], t)] != id) {
      moved = j;  // keep watching a not-yet-identity fanin
      return true;
    }
  }
  // Watch exhausted: at most one free fanin remains - full deduction.
  return deduce_gate(g, t);
}

bool ImplicationEngine::propagate() {
  if (conflict_) return false;
  while (qhead_ < trail_.size()) {
    const NodeId nd = trail_[qhead_++];
    const GateId g = gate_of(nd);
    const unsigned t = cycle_of(nd);
    const Gate& gate = gn_.gate(g);
    // Own-gate deduction: output events run the backward rules; DFF outputs
    // couple to the previous cycle's D input.
    if (gate.kind == GateKind::kDff) {
      if (!deduce_dff(g, t)) return false;
    } else if (gate.kind != GateKind::kVar &&
               gate.kind != GateKind::kConst0 &&
               gate.kind != GateKind::kConst1) {
      if (!deduce_gate(g, t)) return false;
    }
    // Fanout wakeups: forward rules (watched for wide AND/OR), and the
    // next cycle's output for DFF consumers.
    for (GateId f : gn_.fanouts()[g]) {
      const Gate& fg = gn_.gate(f);
      if (fg.kind == GateKind::kDff) {
        if (t + 1 < T_ && !deduce_dff(f, t + 1)) return false;
        continue;
      }
      for (unsigned i = 0; i < fg.fanin.size(); ++i)
        if (fg.fanin[i] == g && !wake_from_fanin(f, t, i)) return false;
    }
  }
  return true;
}

bool ImplicationEngine::justified(NodeId nd) const {
  const GateId g = gate_of(nd);
  const unsigned t = cycle_of(nd);
  const Gate& gate = gn_.gate(g);
  const L3 v = val_[nd];
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return true;
    case GateKind::kDff:
      return t == 0 || val_[node(gate.fanin[0], t - 1)] == v;
    case GateKind::kBuf:
      return val_[node(gate.fanin[0], t)] == v;
    case GateKind::kNot:
      return l3_not(val_[node(gate.fanin[0], t)]) == v;
    case GateKind::kXor:
      return l3_xor(val_[node(gate.fanin[0], t)],
                    val_[node(gate.fanin[1], t)]) == v;
    case GateKind::kAnd:
    case GateKind::kOr: {
      L3 acc = identity_of(gate.kind);
      for (GateId in : gate.fanin)
        acc = gate.kind == GateKind::kAnd ? l3_and(acc, val_[node(in, t)])
                                          : l3_or(acc, val_[node(in, t)]);
      return acc == v;
    }
  }
  return false;
}

std::vector<Lit> ImplicationEngine::conflict_cut() const {
  std::vector<Lit> cut;
  if (have_pending_) cut.push_back(pending_root_);
  std::vector<NodeId> stack = conflict_nodes_;
  std::vector<NodeId> marked;
  while (!stack.empty()) {
    const NodeId nd = stack.back();
    stack.pop_back();
    if (mark_[nd]) continue;
    mark_[nd] = 1;
    marked.push_back(nd);
    const NodeInfo& ni = info_[nd];
    switch (ni.reason) {
      case Reason::kUnset:
      case Reason::kReset:
        break;  // unconditional (or the clashing unassigned node itself)
      case Reason::kRoot:
        cut.push_back({gate_of(nd), cycle_of(nd), val_[nd] == L3::T});
        break;
      case Reason::kForward:
      case Reason::kBackward:
      case Reason::kNogood:
        for (std::uint16_t i = 0; i < ni.ante_len; ++i)
          stack.push_back(ante_pool_[ni.ante_ofs + i]);
        break;
    }
  }
  for (NodeId nd : marked) mark_[nd] = 0;
  std::sort(cut.begin(), cut.end());
  cut.erase(std::unique(cut.begin(), cut.end()), cut.end());
  return cut;
}

std::vector<Lit> ImplicationEngine::var_assignments() const {
  std::vector<Lit> out;
  for (NodeId nd : trail_)
    if (gn_.gate(gate_of(nd)).kind == GateKind::kVar)
      out.push_back({gate_of(nd), cycle_of(nd), val_[nd] == L3::T});
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hltg
