#include "util/table.h"

#include <cstdio>
#include <sstream>

namespace hltg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_kv(const std::string& key, const std::string& value) {
  std::vector<std::string> row{key, value};
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<size_t> w(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) w[c] = header_[c].size();
  for (const auto& r : rows_)
    for (size_t c = 0; c < r.size(); ++c)
      if (r[c].size() > w[c]) w[c] = r[c].size();

  std::ostringstream os;
  auto line = [&](char fill) {
    os << '+';
    for (size_t c = 0; c < w.size(); ++c) {
      os << std::string(w[c] + 2, fill) << '+';
    }
    os << '\n';
  };
  auto row = [&](const std::vector<std::string>& r) {
    os << '|';
    for (size_t c = 0; c < w.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string{};
      os << ' ' << s << std::string(w[c] - s.size() + 1, ' ') << '|';
    }
    os << '\n';
  };
  line('-');
  row(header_);
  line('=');
  for (const auto& r : rows_) row(r);
  line('-');
  return os.str();
}

void TextTable::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt_double(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace hltg
