// Masked fixed-width word values for the word-level datapath.
//
// Datapath buses in the DLX model are at most 64 bits wide (most are 32 or
// 5 bits). A Word carries a value together with its width; all arithmetic
// is performed modulo 2^width, which matches the semantics of the high-level
// datapath modules (Sec. III of the paper).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace hltg {

/// Mask with the low `width` bits set. width must be in [0, 64].
constexpr std::uint64_t mask_bits(unsigned width) {
  return width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
}

/// Truncate `v` to `width` bits.
constexpr std::uint64_t trunc(std::uint64_t v, unsigned width) {
  return v & mask_bits(width);
}

/// Sign-extend the low `width` bits of `v` to 64 bits.
constexpr std::uint64_t sext(std::uint64_t v, unsigned width) {
  if (width == 0 || width >= 64) return v;
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  v &= mask_bits(width);
  return (v ^ sign) - sign;
}

/// Interpret the low `width` bits of `v` as a signed value.
constexpr std::int64_t as_signed(std::uint64_t v, unsigned width) {
  return static_cast<std::int64_t>(sext(v, width));
}

/// Extract bit `i` of `v`.
constexpr unsigned get_bit(std::uint64_t v, unsigned i) {
  return static_cast<unsigned>((v >> i) & 1u);
}

/// Return `v` with bit `i` forced to `b`.
constexpr std::uint64_t set_bit(std::uint64_t v, unsigned i, unsigned b) {
  const std::uint64_t m = std::uint64_t{1} << i;
  return b ? (v | m) : (v & ~m);
}

/// Extract the bitfield [lo, lo+width) of `v`.
constexpr std::uint64_t get_field(std::uint64_t v, unsigned lo, unsigned width) {
  return (v >> lo) & mask_bits(width);
}

/// Return `v` with the bitfield [lo, lo+width) replaced by `f`.
constexpr std::uint64_t set_field(std::uint64_t v, unsigned lo, unsigned width,
                                  std::uint64_t f) {
  const std::uint64_t m = mask_bits(width) << lo;
  return (v & ~m) | ((f << lo) & m);
}

/// Addition overflow flag for signed `width`-bit addition.
constexpr bool add_overflows(std::uint64_t a, std::uint64_t b, unsigned width) {
  const std::uint64_t s = trunc(a + b, width);
  const unsigned sa = get_bit(a, width - 1), sb = get_bit(b, width - 1),
                 ss = get_bit(s, width - 1);
  return sa == sb && sa != ss;
}

/// Subtraction overflow flag for signed `width`-bit subtraction a - b.
constexpr bool sub_overflows(std::uint64_t a, std::uint64_t b, unsigned width) {
  const std::uint64_t d = trunc(a - b, width);
  const unsigned sa = get_bit(a, width - 1), sb = get_bit(b, width - 1),
                 sd = get_bit(d, width - 1);
  return sa != sb && sd != sa;
}

/// Hex string of the low `width` bits, zero-padded to the bus width.
inline std::string to_hex(std::uint64_t v, unsigned width) {
  const unsigned digits = (width + 3) / 4;
  std::string s(digits, '0');
  v &= mask_bits(width);
  for (unsigned i = 0; i < digits; ++i) {
    const unsigned nib = static_cast<unsigned>((v >> (4 * (digits - 1 - i))) & 0xF);
    s[i] = "0123456789abcdef"[nib];
  }
  return "0x" + s;
}

}  // namespace hltg
