// I/O fault-injection harness ("failpoints").
//
// Compiled-in hooks at the syscall boundary of the persistence layers (the
// campaign JSONL journal and the deduction store) that inject the failures
// crash-safety must survive: short writes, ENOSPC/EIO errors, fsync
// failures, and process death at (or right after) a syscall. Activation is
// opt-in via the HLTG_FAILPOINTS environment variable or an explicit
// configure() call; when no failpoint is armed the wrappers cost a single
// relaxed-bool load before delegating to the real call, so production runs
// pay nothing.
//
// Spec grammar (env var or configure() string):
//
//   spec    := point (';' point)*
//   point   := site '=' action ('@' N)?
//   action  := 'short' | 'enospc' | 'eio' | 'kill' | 'kill-after'
//
// `site` names a hook location ("journal.write", "store.fsync", ...); `N`
// is the 1-based hit count at which the failpoint fires (default 1: the
// first hit). Each point fires exactly once, then disarms - recovery code
// paths run against healthy I/O, like a real transient fault.
//
//   short      write only half the buffer, then report failure (torn write)
//   enospc     fail the operation with ENOSPC, nothing written
//   eio        fail the operation with EIO
//   kill       die AT the syscall: writes tear (half the buffer reaches the
//              file), fsync/rename die before taking effect
//   kill-after die right after the operation completed
//
// Death is _exit(kKillExitCode): no unwinding, no atexit, no buffer
// flushing - the closest portable approximation of a crash.
#pragma once

#include <cstdio>
#include <string>

namespace hltg::failpoint {

/// What a hit at an armed site injects.
enum class Action {
  kNone,       ///< proceed normally
  kShortWrite, ///< partial write, then failure
  kError,      ///< fail with errno-style code (ENOSPC, EIO)
  kKill,       ///< _exit at the syscall
  kKillAfter,  ///< _exit right after the syscall
};

/// Exit code used by kill/kill-after (looks like SIGKILL's 128+9 to
/// harnesses that only see a status).
inline constexpr int kKillExitCode = 137;

/// Parse and arm `spec` (grammar above), replacing any previous
/// configuration. Empty spec == clear(). Returns false (and sets *error)
/// on a malformed spec, leaving the previous configuration in place.
bool configure(const std::string& spec, std::string* error = nullptr);

/// configure() from HLTG_FAILPOINTS when the variable is set and non-empty.
void configure_from_env();

/// Disarm everything.
void clear();

/// True when at least one failpoint is armed (fast path guard).
bool enabled();

/// Consult the failpoint table for one hit at `site`. Returns the action
/// to inject (kNone almost always); for kError the errno value is stored
/// in *err. Fired points disarm themselves.
Action hit(const char* site, int* err);

/// fwrite() with a failpoint at `site`. Returns bytes written; on an
/// injected failure errno is set and the return is short. kKill tears the
/// write (half the payload reaches the stream) before dying.
std::size_t checked_fwrite(const void* data, std::size_t size, std::FILE* f,
                           const char* site);

/// fsync() with a failpoint at `site`. Returns 0 or -1 (errno set).
int checked_fsync(int fd, const char* site);

/// rename() with a failpoint at `site`. Returns 0 or -1 (errno set).
int checked_rename(const char* from, const char* to, const char* site);

/// remove() with a failpoint at `site`. Returns 0 or -1 (errno set). Used
/// by the result cache's LRU eviction ("cache.evict") so eviction
/// crash-safety is provable the same way publication is.
int checked_remove(const char* path, const char* site);

}  // namespace hltg::failpoint

namespace hltg {

/// Startup probe: can we create (or append to) the file at `path` and
/// sync it? Used by error_campaign to fail fast on unwritable --journal /
/// --store paths instead of erroring mid-campaign. Creates the file if
/// missing and leaves it in place (empty) so a subsequent open sees the
/// same permissions the probe saw. Returns true on success; on failure
/// *why explains.
bool probe_writable_file(const std::string& path, std::string* why);

/// Same for a directory: creates it if missing (mirroring the lazy
/// create-on-first-bundle of the quarantine writer) and verifies a file
/// can be created inside it. The probe file is removed afterwards.
bool probe_writable_dir(const std::string& dir, std::string* why);

}  // namespace hltg
