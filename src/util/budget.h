// Budget: cooperative resource limits for the search engines.
//
// The paper's Table-1 campaigns treat budget exhaustion ("aborted errors")
// as a first-class outcome, but the only limit the seed implementation knew
// was CTRLJUST's per-search backtrack cap. A Budget combines every way an
// error attempt may be cut short:
//   - a wall-clock deadline,
//   - caps on total decisions / backtracks across *all* engines and plans
//     of one attempt (the per-search caps in CtrlJustConfig still apply on
//     top, per solve), and
//   - a cooperative cancellation token (e.g. wired to SIGINT).
// One Budget instance covers one error attempt; TG threads the same
// instance through DPTRACE, CTRLJUST and DPRELAX, each of which charges its
// work and polls `exhausted()` inside its search loop, unwinding cleanly
// with TgStatus::kFailure and a structured AbortReason.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>

namespace hltg {

/// Why a search unwound before completing.
enum class AbortReason : std::uint8_t {
  kNone,        ///< not aborted
  kDeadline,    ///< wall-clock deadline passed
  kBacktracks,  ///< backtrack cap hit
  kDecisions,   ///< decision cap hit
  kCancelled,   ///< cancellation requested
  kException,   ///< the generator threw; campaign caught and recorded it
};

constexpr std::string_view to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kDeadline: return "deadline";
    case AbortReason::kBacktracks: return "backtracks";
    case AbortReason::kDecisions: return "decisions";
    case AbortReason::kCancelled: return "cancelled";
    case AbortReason::kException: return "exception";
  }
  return "?";
}

/// Parse the strings to_string(AbortReason) produces (journal round-trip).
constexpr AbortReason abort_reason_from(std::string_view s) {
  if (s == "deadline") return AbortReason::kDeadline;
  if (s == "backtracks") return AbortReason::kBacktracks;
  if (s == "decisions") return AbortReason::kDecisions;
  if (s == "cancelled") return AbortReason::kCancelled;
  if (s == "exception") return AbortReason::kException;
  return AbortReason::kNone;
}

/// Cooperative cancellation: the owner (signal handler, driver thread)
/// requests a stop; search loops poll it through their Budget.
class CancelToken {
 public:
  void request_stop() noexcept { stop_.store(true, std::memory_order_relaxed); }
  void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }
  bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> stop_{false};
};

class Budget {
 public:
  using Clock = std::chrono::steady_clock;
  static constexpr std::uint64_t kUnlimited =
      std::numeric_limits<std::uint64_t>::max();

  Budget() = default;  ///< unlimited

  void set_deadline(Clock::time_point t) { deadline_ = t; }
  void set_deadline_after(Clock::duration d) { deadline_ = Clock::now() + d; }
  void set_max_decisions(std::uint64_t n) { max_decisions_ = n; }
  void set_max_backtracks(std::uint64_t n) { max_backtracks_ = n; }
  void set_cancel(const CancelToken* tok) { cancel_ = tok; }

  bool limited() const {
    return deadline_ != Clock::time_point::max() ||
           max_decisions_ != kUnlimited || max_backtracks_ != kUnlimited ||
           cancel_ != nullptr;
  }

  /// Engines charge their work as it happens so the caps span every engine
  /// and plan of the attempt.
  void charge_decisions(std::uint64_t n) { decisions_ += n; }
  void charge_backtracks(std::uint64_t n) { backtracks_ += n; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t backtracks() const { return backtracks_; }

  /// Cheap enough to call once per search iteration: counter caps and the
  /// cancel flag are checked every call, the deadline clock read is
  /// throttled to every kPollStride calls.
  AbortReason exhausted() {
    if (cancel_ && cancel_->stop_requested()) return AbortReason::kCancelled;
    if (backtracks_ > max_backtracks_) return AbortReason::kBacktracks;
    if (decisions_ > max_decisions_) return AbortReason::kDecisions;
    if (deadline_ != Clock::time_point::max() &&
        (++poll_ % kPollStride == 0 || !deadline_checked_)) {
      deadline_checked_ = true;
      if (Clock::now() >= deadline_) return AbortReason::kDeadline;
    }
    return AbortReason::kNone;
  }

 private:
  static constexpr unsigned kPollStride = 32;

  Clock::time_point deadline_ = Clock::time_point::max();
  std::uint64_t max_decisions_ = kUnlimited;
  std::uint64_t max_backtracks_ = kUnlimited;
  const CancelToken* cancel_ = nullptr;
  std::uint64_t decisions_ = 0;
  std::uint64_t backtracks_ = 0;
  unsigned poll_ = 0;
  bool deadline_checked_ = false;
};

/// A budget *recipe*: durations and caps without a start time. The campaign
/// arms one fresh Budget per error attempt, so the deadline is relative to
/// the start of that attempt.
struct BudgetSpec {
  double deadline_seconds = 0;  ///< 0 disables the deadline
  std::uint64_t max_decisions = Budget::kUnlimited;
  std::uint64_t max_backtracks = Budget::kUnlimited;
  const CancelToken* cancel = nullptr;

  Budget arm() const {
    Budget b;
    if (deadline_seconds > 0)
      b.set_deadline_after(std::chrono::duration_cast<Budget::Clock::duration>(
          std::chrono::duration<double>(deadline_seconds)));
    b.set_max_decisions(max_decisions);
    b.set_max_backtracks(max_backtracks);
    b.set_cancel(cancel);
    return b;
  }
};

}  // namespace hltg
