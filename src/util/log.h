// Minimal leveled logger. Quiet by default; benches/examples raise the level.
#pragma once

#include <sstream>
#include <string>

namespace hltg {

enum class LogLevel { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

LogLevel log_level();
void set_log_level(LogLevel lvl);

void log_emit(LogLevel lvl, const std::string& msg);

namespace detail {
inline void log_cat(std::ostringstream&) {}
template <typename T, typename... Ts>
void log_cat(std::ostringstream& os, const T& t, const Ts&... ts) {
  os << t;
  log_cat(os, ts...);
}
}  // namespace detail

template <typename... Ts>
void logf(LogLevel lvl, const Ts&... ts) {
  if (lvl > log_level()) return;
  std::ostringstream os;
  detail::log_cat(os, ts...);
  log_emit(lvl, os.str());
}

template <typename... Ts>
void log_info(const Ts&... ts) { logf(LogLevel::kInfo, ts...); }
template <typename... Ts>
void log_debug(const Ts&... ts) { logf(LogLevel::kDebug, ts...); }
template <typename... Ts>
void log_warn(const Ts&... ts) { logf(LogLevel::kWarn, ts...); }
template <typename... Ts>
void log_error(const Ts&... ts) { logf(LogLevel::kError, ts...); }

}  // namespace hltg
