// Shared status codes for the test-generation engines (Fig. 3 of the paper).
#pragma once

#include <string_view>

namespace hltg {

/// Outcome lattice used throughout TG / CTRLJUST / DPTRACE / DPRELAX.
enum class TgStatus {
  kUndetermined,  ///< search still open
  kConflict,      ///< current decisions are inconsistent: backtrack
  kSuccess,       ///< test found (reset state reached, objectives met)
  kFailure,       ///< search space exhausted or budget hit: abort error
};

constexpr std::string_view to_string(TgStatus s) {
  switch (s) {
    case TgStatus::kUndetermined: return "UNDETERMINED";
    case TgStatus::kConflict: return "CONFLICT";
    case TgStatus::kSuccess: return "SUCCESS";
    case TgStatus::kFailure: return "FAILURE";
  }
  return "?";
}

/// Combine per-engine statuses as in Fig. 3 step 8: any conflict dominates;
/// success only when the caller decides all objectives are met.
constexpr TgStatus combine(TgStatus a, TgStatus b) {
  if (a == TgStatus::kConflict || b == TgStatus::kConflict)
    return TgStatus::kConflict;
  if (a == TgStatus::kFailure || b == TgStatus::kFailure)
    return TgStatus::kFailure;
  return TgStatus::kUndetermined;
}

}  // namespace hltg
