#include "util/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <sys/stat.h>
#include <vector>

namespace hltg::failpoint {

namespace {

struct Point {
  std::string site;
  Action action = Action::kNone;
  int err = 0;
  unsigned at = 1;  ///< fires on the at-th hit of the site (1-based)
  bool fired = false;
};

struct State {
  std::mutex mu;
  std::vector<Point> points;
  std::vector<std::pair<std::string, unsigned>> counts;  ///< hits per site
};

State& state() {
  static State s;
  return s;
}

// The only thing the disabled fast path reads. Stores happen under the
// mutex; a stale read just means one extra locked hit() call.
std::atomic<bool> g_enabled{false};

void recompute_enabled_locked(State& s) {
  bool any = false;
  for (const Point& p : s.points)
    if (!p.fired) any = true;
  g_enabled.store(any, std::memory_order_relaxed);
}

bool parse_action(const std::string& word, Action* action, int* err) {
  if (word == "short") {
    *action = Action::kShortWrite;
    *err = ENOSPC;
  } else if (word == "enospc") {
    *action = Action::kError;
    *err = ENOSPC;
  } else if (word == "eio") {
    *action = Action::kError;
    *err = EIO;
  } else if (word == "kill") {
    *action = Action::kKill;
  } else if (word == "kill-after") {
    *action = Action::kKillAfter;
  } else {
    return false;
  }
  return true;
}

[[noreturn]] void die() { _exit(kKillExitCode); }

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  std::vector<Point> parsed;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string point = spec.substr(pos, end - pos);
    pos = end + 1;
    if (point.empty()) continue;
    const std::size_t eq = point.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error) *error = "failpoint spec needs site=action: '" + point + "'";
      return false;
    }
    Point p;
    p.site = point.substr(0, eq);
    std::string action = point.substr(eq + 1);
    const std::size_t at = action.find('@');
    if (at != std::string::npos) {
      const std::string count = action.substr(at + 1);
      action = action.substr(0, at);
      char* rest = nullptr;
      const unsigned long n = std::strtoul(count.c_str(), &rest, 10);
      if (count.empty() || *rest != '\0' || n == 0) {
        if (error) *error = "failpoint hit count must be >= 1: '" + point + "'";
        return false;
      }
      p.at = static_cast<unsigned>(n);
    }
    if (!parse_action(action, &p.action, &p.err)) {
      if (error) *error = "unknown failpoint action: '" + action + "'";
      return false;
    }
    parsed.push_back(std::move(p));
  }

  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.points = std::move(parsed);
  s.counts.clear();
  recompute_enabled_locked(s);
  return true;
}

void configure_from_env() {
  const char* spec = std::getenv("HLTG_FAILPOINTS");
  if (spec && *spec) configure(spec);
}

void clear() { configure(""); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Action hit(const char* site, int* err) {
  if (!enabled()) return Action::kNone;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  unsigned* count = nullptr;
  for (auto& [name, n] : s.counts)
    if (name == site) count = &n;
  if (!count) {
    s.counts.emplace_back(site, 0u);
    count = &s.counts.back().second;
  }
  ++*count;
  for (Point& p : s.points) {
    if (p.fired || p.site != site || p.at != *count) continue;
    p.fired = true;
    recompute_enabled_locked(s);
    if (err) *err = p.err;
    return p.action;
  }
  return Action::kNone;
}

std::size_t checked_fwrite(const void* data, std::size_t size, std::FILE* f,
                           const char* site) {
  if (!enabled()) return std::fwrite(data, 1, size, f);
  int err = 0;
  switch (hit(site, &err)) {
    case Action::kNone:
      return std::fwrite(data, 1, size, f);
    case Action::kShortWrite: {
      const std::size_t half = size / 2;
      const std::size_t wrote = std::fwrite(data, 1, half, f);
      std::fflush(f);
      errno = ENOSPC;
      return wrote;
    }
    case Action::kError:
      errno = err;
      return 0;
    case Action::kKill: {
      // Crash mid-write: half the payload reaches the file, then death.
      std::fwrite(data, 1, size / 2, f);
      std::fflush(f);
      die();
    }
    case Action::kKillAfter: {
      std::fwrite(data, 1, size, f);
      std::fflush(f);
      die();
    }
  }
  return 0;  // unreachable
}

int checked_fsync(int fd, const char* site) {
  if (!enabled()) return ::fsync(fd);
  int err = 0;
  switch (hit(site, &err)) {
    case Action::kNone:
      return ::fsync(fd);
    case Action::kShortWrite:
    case Action::kError:
      errno = err ? err : EIO;
      return -1;
    case Action::kKill:
      die();  // crash before the barrier took effect
    case Action::kKillAfter: {
      ::fsync(fd);
      die();
    }
  }
  return -1;  // unreachable
}

int checked_rename(const char* from, const char* to, const char* site) {
  if (!enabled()) return std::rename(from, to);
  int err = 0;
  switch (hit(site, &err)) {
    case Action::kNone:
      return std::rename(from, to);
    case Action::kShortWrite:
    case Action::kError:
      errno = err ? err : EIO;
      return -1;
    case Action::kKill:
      die();  // crash before the commit point: old file survives
    case Action::kKillAfter: {
      std::rename(from, to);
      die();
    }
  }
  return -1;  // unreachable
}

int checked_remove(const char* path, const char* site) {
  if (!enabled()) return std::remove(path);
  int err = 0;
  switch (hit(site, &err)) {
    case Action::kNone:
      return std::remove(path);
    case Action::kShortWrite:
    case Action::kError:
      errno = err ? err : EIO;
      return -1;
    case Action::kKill:
      die();  // crash before the unlink: the entry survives
    case Action::kKillAfter: {
      std::remove(path);
      die();
    }
  }
  return -1;  // unreachable
}

}  // namespace hltg::failpoint

namespace hltg {

bool probe_writable_file(const std::string& path, std::string* why) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (!f) {
    if (why)
      *why = "cannot open '" + path + "' for writing: " +
             std::string(std::strerror(errno));
    return false;
  }
  std::fclose(f);
  return true;
}

bool probe_writable_dir(const std::string& dir, std::string* why) {
  struct stat st {};
  if (stat(dir.c_str(), &st) != 0) {
    // Consumers (e.g. the quarantine bundle writer) create their target
    // directory lazily, so the probe does the same rather than reject it.
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      if (why) *why = "cannot create directory '" + dir + "': " + ec.message();
      return false;
    }
  } else if (!S_ISDIR(st.st_mode)) {
    if (why) *why = "'" + dir + "' exists but is not a directory";
    return false;
  }
  const std::string probe =
      dir + "/.hltg-probe-" + std::to_string(static_cast<long>(getpid()));
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (!f) {
    if (why)
      *why = "cannot create files in '" + dir + "': " +
             std::string(std::strerror(errno));
    return false;
  }
  std::fclose(f);
  std::remove(probe.c_str());
  return true;
}

}  // namespace hltg
