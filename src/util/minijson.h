// Minimal flat-object JSON: exactly what the line-delimited protocols of
// this codebase need, and nothing more. One JSON object per line, values
// restricted to strings, numbers and booleans (no nesting, no arrays);
// unknown keys are tolerated so formats can grow without breaking old
// readers. Shared by the campaign checkpoint journal (errors/journal) and
// the campaign service protocol (service/proto) - one parser, one escaping
// convention, so the journal rows a service subscriber streams are parsed
// by the very scanner that wrote them.
#pragma once

#include <map>
#include <string>

namespace hltg {

/// Escape a string for embedding in a JSON double-quoted literal
/// (backslash, quote, control bytes as \u00XX).
std::string json_escape(const std::string& s);

/// Flat-object JSON scanner: enough for this repo's own line protocols
/// (string / number / bool values only, no nesting). Tolerant of unknown
/// keys. A malformed line parses as !ok(); a torn line (crash mid-write)
/// always lands there because its final string is unterminated.
class MiniJson {
 public:
  explicit MiniJson(const std::string& line) { ok_ = parse(line); }

  bool ok() const { return ok_; }

  bool get_string(const char* key, std::string* out) const;
  bool get_u64(const char* key, std::uint64_t* out) const;
  bool get_double(const char* key, double* out) const;
  bool get_bool(const char* key, bool* out) const;
  bool has(const char* key) const;

 private:
  bool parse(const std::string& s);
  static bool parse_string(const std::string& s, std::size_t* ip,
                           std::string* out);

  bool ok_ = false;
  std::map<std::string, std::string> strings_;
  std::map<std::string, std::string> scalars_;
};

/// Incremental JSON-object builder for one protocol line. Purely
/// append-only; the caller decides the key order, which therefore is
/// deterministic - byte-identical replies are part of the service cache
/// contract.
class JsonWriter {
 public:
  JsonWriter& str(const char* key, const std::string& v);
  JsonWriter& num(const char* key, std::uint64_t v);
  JsonWriter& num_signed(const char* key, std::int64_t v);
  JsonWriter& boolean(const char* key, bool v);
  /// Verbatim (pre-formatted) scalar, e.g. a %.17g double.
  JsonWriter& raw(const char* key, const std::string& v);

  std::string take() { return out_ + "}"; }

 private:
  void key(const char* k);
  std::string out_ = "{";
  bool first_ = true;
};

}  // namespace hltg
