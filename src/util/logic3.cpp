#include "util/logic3.h"

namespace hltg {

std::string to_string(L3 v) {
  switch (v) {
    case L3::F: return "0";
    case L3::T: return "1";
    default: return "X";
  }
}

}  // namespace hltg
