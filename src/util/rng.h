// Deterministic xoshiro-style PRNG.
//
// Relaxation heuristics (Sec. V.B) and the random baseline need randomness,
// but all experiments must be reproducible, so everything is seeded
// explicitly and no global state is used.
#pragma once

#include <cstdint>

namespace hltg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {
    if (state_ == 0) state_ = 0x853c49e6748fea9bull;
    // Warm up so that small seeds diverge quickly.
    for (int i = 0; i < 4; ++i) next();
  }

  std::uint64_t next() {
    // splitmix64 step: excellent equidistribution for our purposes.
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Uniform `width`-bit word.
  std::uint64_t word(unsigned width) {
    return width >= 64 ? next() : (next() & ((std::uint64_t{1} << width) - 1));
  }

  bool flip() { return next() & 1; }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) { return below(den) < num; }

 private:
  std::uint64_t state_;
};

}  // namespace hltg
