// Three-valued (0/1/X) logic used for implication in the controller search.
//
// CTRLJUST (Sec. V.C) is a PODEM-based algorithm: decision variables are
// assigned 0/1 and their implications are computed by 3-valued evaluation of
// the controller gate network. X means "unassigned / unknown".
#pragma once

#include <cstdint>
#include <string>

namespace hltg {

enum class L3 : std::uint8_t { F = 0, T = 1, X = 2 };

constexpr L3 l3_from_bool(bool b) { return b ? L3::T : L3::F; }

constexpr bool is_known(L3 v) { return v != L3::X; }

constexpr L3 l3_not(L3 a) {
  return a == L3::X ? L3::X : (a == L3::T ? L3::F : L3::T);
}

constexpr L3 l3_and(L3 a, L3 b) {
  if (a == L3::F || b == L3::F) return L3::F;
  if (a == L3::T && b == L3::T) return L3::T;
  return L3::X;
}

constexpr L3 l3_or(L3 a, L3 b) {
  if (a == L3::T || b == L3::T) return L3::T;
  if (a == L3::F && b == L3::F) return L3::F;
  return L3::X;
}

constexpr L3 l3_xor(L3 a, L3 b) {
  if (a == L3::X || b == L3::X) return L3::X;
  return a == b ? L3::F : L3::T;
}

/// Multiplexer: s ? b : a with 3-valued select.
constexpr L3 l3_mux(L3 s, L3 a, L3 b) {
  if (s == L3::F) return a;
  if (s == L3::T) return b;
  return a == b ? a : L3::X;  // select unknown: known only if both agree
}

std::string to_string(L3 v);

}  // namespace hltg
