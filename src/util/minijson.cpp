#include "util/minijson.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace hltg {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

bool MiniJson::get_string(const char* key, std::string* out) const {
  const auto it = strings_.find(key);
  if (it == strings_.end()) return false;
  *out = it->second;
  return true;
}

bool MiniJson::get_u64(const char* key, std::uint64_t* out) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return false;
  char* end = nullptr;
  *out = std::strtoull(it->second.c_str(), &end, 10);
  return end && *end == '\0';
}

bool MiniJson::get_double(const char* key, double* out) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  return end && *end == '\0';
}

bool MiniJson::get_bool(const char* key, bool* out) const {
  const auto it = scalars_.find(key);
  if (it == scalars_.end()) return false;
  if (it->second == "true") return *out = true, true;
  if (it->second == "false") return *out = false, true;
  return false;
}

bool MiniJson::has(const char* key) const {
  return strings_.count(key) > 0 || scalars_.count(key) > 0;
}

bool MiniJson::parse(const std::string& s) {
  std::size_t i = 0;
  auto skip = [&] {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  };
  skip();
  if (i >= s.size() || s[i] != '{') return false;
  ++i;
  for (;;) {
    skip();
    if (i < s.size() && s[i] == '}') return true;
    std::string key;
    if (!parse_string(s, &i, &key)) return false;
    skip();
    if (i >= s.size() || s[i] != ':') return false;
    ++i;
    skip();
    if (i < s.size() && s[i] == '"') {
      std::string val;
      if (!parse_string(s, &i, &val)) return false;
      strings_[key] = val;
    } else {
      const std::size_t b = i;
      while (i < s.size() && s[i] != ',' && s[i] != '}') ++i;
      std::size_t e = i;
      while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
      if (e == b) return false;
      scalars_[key] = s.substr(b, e - b);
    }
    skip();
    if (i < s.size() && s[i] == ',') {
      ++i;
      continue;
    }
    if (i < s.size() && s[i] == '}') return true;
    return false;
  }
}

bool MiniJson::parse_string(const std::string& s, std::size_t* ip,
                            std::string* out) {
  std::size_t i = *ip;
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out->clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      if (i + 1 >= s.size()) return false;
      const char c = s[i + 1];
      switch (c) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (i + 5 >= s.size()) return false;
          unsigned v = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i + 2 + k];
            if (!std::isxdigit(static_cast<unsigned char>(h))) return false;
            v = v * 16 + static_cast<unsigned>(
                             h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          // The writer only emits \u00XX for control bytes.
          *out += static_cast<char>(v & 0xFF);
          i += 4;
          break;
        }
        default: return false;
      }
      i += 2;
    } else {
      *out += s[i++];
    }
  }
  if (i >= s.size()) return false;  // unterminated: torn row
  *ip = i + 1;
  return true;
}

void JsonWriter::key(const char* k) {
  if (!first_) out_ += ',';
  first_ = false;
  out_ += '"';
  out_ += k;
  out_ += "\":";
}

JsonWriter& JsonWriter::str(const char* k, const std::string& v) {
  key(k);
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::num(const char* k, std::uint64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::num_signed(const char* k, std::int64_t v) {
  key(k);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::boolean(const char* k, bool v) {
  key(k);
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw(const char* k, const std::string& v) {
  key(k);
  out_ += v;
  return *this;
}

}  // namespace hltg
