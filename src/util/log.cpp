#include "util/log.h"

#include <cstdio>

namespace hltg {

namespace {
LogLevel g_level = LogLevel::kWarn;
}

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel lvl) { g_level = lvl; }

void log_emit(LogLevel lvl, const std::string& msg) {
  static const char* names[] = {"ERROR", "WARN", "INFO", "DEBUG"};
  std::fprintf(stderr, "[%s] %s\n", names[static_cast<int>(lvl)], msg.c_str());
}

}  // namespace hltg
