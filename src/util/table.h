// Plain-text table printer for the bench harnesses (Table-1-style output).
#pragma once

#include <string>
#include <vector>

namespace hltg {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Convenience: key/value row (used for Table-1-shaped summaries).
  void add_kv(const std::string& key, const std::string& value);

  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` decimals.
std::string fmt_double(double v, int prec = 2);

}  // namespace hltg
