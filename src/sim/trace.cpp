#include "sim/trace.h"

#include <sstream>

#include "isa/disasm.h"

namespace hltg {

void PipelineTracer::observe(const ProcSim& sim) {
  PipeSnapshot snap;
  const GateId stall_g = m_.ctrl.find("cg.stall");
  const GateId redir_g = m_.ctrl.find("cg.redirect");
  snap.stall = stall_g != kNoGate && sim.gate_value(stall_g);
  snap.squash = redir_g != kNoGate && sim.gate_value(redir_g);

  // The instruction currently being fetched occupies IF.
  occ_[0] = next_index_;
  fetched_.push_back(
      disassemble(static_cast<std::uint32_t>(sim.net_value(m_.sig.instr))));
  for (int s = 0; s < kNumStages; ++s) snap.slot[s] = occ_[s];
  snaps_.push_back(snap);

  // Advance shadow occupancy the way the latches will at the clock edge.
  int nxt[kNumStages];
  nxt[4] = occ_[3];                                // MEM -> WB
  nxt[3] = occ_[2];                                // EX -> MEM
  nxt[2] = snap.stall || snap.squash ? -1 : occ_[1];  // bubble into EX
  nxt[1] = snap.squash ? -1 : (snap.stall ? occ_[1] : occ_[0]);
  nxt[0] = -1;  // filled by next fetch
  for (int s = 0; s < kNumStages; ++s) occ_[s] = nxt[s];
  if (!snap.stall || snap.squash) ++next_index_;  // instruction consumed
}

std::string PipelineTracer::render() const {
  std::ostringstream os;
  os << "cycle:";
  for (std::size_t c = 0; c < snaps_.size(); ++c) {
    os << (c % 5 == 0 ? '|' : ' ');
    os << c % 10;
  }
  os << "\n";
  static const char* stage_ch = "FDXMW";
  for (int idx = 0; idx < next_index_; ++idx) {
    // Find the instruction's trajectory.
    std::string row(snaps_.size(), '.');
    bool seen = false;
    for (std::size_t c = 0; c < snaps_.size(); ++c)
      for (int s = 0; s < kNumStages; ++s)
        if (snaps_[c].slot[s] == idx) {
          row[c] = stage_ch[s];
          seen = true;
        }
    if (!seen) continue;
    os << "i" << idx;
    os << std::string(idx < 10 ? 4 : 3, ' ');
    for (std::size_t c = 0; c < snaps_.size(); ++c) {
      if (c % 5 == 0) os << ' ';
      os << row[c];
    }
    // Label with the first fetch of this instruction.
    for (std::size_t c = 0; c < snaps_.size(); ++c)
      if (snaps_[c].slot[0] == idx) {
        os << "  " << (c < fetched_.size() ? fetched_[c] : "");
        break;
      }
    os << "\n";
  }
  return os.str();
}

std::string trace_pipeline(const DlxModel& m, const TestCase& tc,
                           unsigned cycles, const ErrorInjection& inj) {
  ProcSim sim(m, tc, inj);
  PipelineTracer tr(m);
  for (unsigned c = 0; c < cycles; ++c) {
    sim.begin_cycle();
    tr.observe(sim);
    sim.end_cycle();
  }
  return tr.render();
}

}  // namespace hltg
