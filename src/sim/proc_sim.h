// Cycle-accurate simulator of the two-level DLX implementation model.
//
// Simulates the word-level datapath netlist and the bit-level controller
// gate network together, cycle by cycle. The combinational interaction
// between the two (STS -> controller -> CTRL -> datapath -> STS ...) is
// resolved by fixpoint iteration; the combined graph is acyclic, so a few
// rounds converge exactly.
//
// Design errors are injected through `ErrorInjection`:
//   - bus SSL: a single line (bit) of a datapath bus permanently stuck at
//     0 or 1 (the paper's error model, from Bhattacharya & Hayes [7]);
//   - module substitution (MSE): a module evaluated as a different kind;
//   - bus order error (BOE): a module's first two data inputs swapped.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "dlx/dlx.h"
#include "isa/spec_sim.h"
#include "sim/schedule.h"

namespace hltg {

struct StuckLine {
  NetId net = kNoNet;
  unsigned bit = 0;
  bool stuck_value = false;
};

struct ErrorInjection {
  std::vector<StuckLine> stuck;
  std::map<ModId, ModuleKind> substitute;
  std::set<ModId> swap_inputs;
  /// Bus source errors: (module, data-input slot) reads this net instead of
  /// its real driver.
  std::map<std::pair<ModId, unsigned>, NetId> rewire;
  bool empty() const {
    return stuck.empty() && substitute.empty() && swap_inputs.empty() &&
           rewire.empty();
  }
};

class ProcSim {
 public:
  ProcSim(const DlxModel& m, const TestCase& tc, ErrorInjection inj = {});

  /// Advance one clock cycle.
  void step();
  /// Split-phase stepping for observers that need to inspect combinational
  /// values mid-cycle: begin_cycle() fetches and settles the combinational
  /// logic; end_cycle() commits the clock edge. step() == both.
  void begin_cycle();
  void end_cycle();
  /// Run for `cycles` and return the architectural trace.
  ArchTrace run(unsigned cycles);

  // Observability for tests / visualization.
  std::uint64_t net_value(NetId n) const { return dpv_[n]; }
  bool gate_value(GateId g) const { return gv_[g]; }
  std::uint32_t pc() const;
  std::uint32_t reg(unsigned r) const { return r == 0 ? 0 : rf_[r]; }
  const SparseMemory& dmem() const { return dmem_; }
  const std::vector<MemWrite>& writes() const { return writes_; }
  std::uint64_t cycle() const { return cycle_; }
  std::uint64_t instructions_committed() const { return committed_; }
  std::uint64_t stall_cycles() const { return stalls_; }
  std::uint64_t squashes() const { return squashes_; }
  ArchTrace arch_trace() const;

 private:
  void fetch();
  void eval_fixpoint();
  void clock_edge();
  std::uint64_t eval_module(const Module& m) const;
  void set_net(NetId n, std::uint64_t v, bool* changed);

  const DlxModel& m_;
  ErrorInjection inj_;
  mutable std::vector<std::uint64_t> scratch_in_, scratch_ctrl_;
  std::vector<std::uint64_t> stuck_or_;   ///< per-net OR mask
  std::vector<std::uint64_t> stuck_and_;  ///< per-net AND mask
  std::vector<std::uint64_t> dpv_;        ///< datapath net values
  std::vector<bool> gv_;                  ///< controller gate values
  std::array<std::uint32_t, 32> rf_{};
  SparseMemory dmem_;
  std::vector<std::uint32_t> imem_;
  std::vector<MemWrite> writes_;
  std::uint64_t cycle_ = 0;
  std::uint64_t committed_ = 0;
  std::uint64_t stalls_ = 0;
  std::uint64_t squashes_ = 0;
  GateId stall_gate_ = kNoGate;
  GateId redirect_gate_ = kNoGate;
  std::vector<EvalStep> sched_;
  std::vector<NetId> sts_net_of_gate_;
};

/// Run the implementation (optionally with an injected error) and return
/// its architectural trace after `cycles`.
ArchTrace impl_run(const DlxModel& m, const TestCase& tc, unsigned cycles,
                   const ErrorInjection& inj = {});

}  // namespace hltg
