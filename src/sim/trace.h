// Pipeline-occupancy tracing for visualization and white-box tests.
//
// Tracks which dynamic instruction occupies each pipe stage every cycle by
// shadowing the implementation's stall / squash control signals, and renders
// the classic pipeline diagram (one row per dynamic instruction, one column
// per cycle).
#pragma once

#include <string>
#include <vector>

#include "sim/proc_sim.h"

namespace hltg {

struct PipeSnapshot {
  // Dynamic instruction index occupying each stage this cycle; -1 = bubble.
  int slot[kNumStages] = {-1, -1, -1, -1, -1};
  bool stall = false;
  bool squash = false;
};

class PipelineTracer {
 public:
  explicit PipelineTracer(const DlxModel& m) : m_(m) {}

  /// Observe the simulator *after* eval but *before* the clock edge - i.e.
  /// call step_traced() below rather than sim.step().
  void observe(const ProcSim& sim);

  const std::vector<PipeSnapshot>& snapshots() const { return snaps_; }
  const std::vector<std::string>& fetched() const { return fetched_; }

  /// Render the pipeline diagram.
  std::string render() const;

 private:
  const DlxModel& m_;
  std::vector<PipeSnapshot> snaps_;
  std::vector<std::string> fetched_;  ///< disassembly of fetched instrs
  // Shadow occupancy: dynamic index per stage.
  int occ_[kNumStages] = {-1, -1, -1, -1, -1};
  int next_index_ = 0;
};

/// Run `cycles` steps of a fresh simulator, tracing occupancy.
std::string trace_pipeline(const DlxModel& m, const TestCase& tc,
                           unsigned cycles, const ErrorInjection& inj = {});

}  // namespace hltg
