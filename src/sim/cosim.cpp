#include "sim/cosim.h"

namespace hltg {

unsigned drain_cycles(std::size_t n) {
  // Each instruction takes one cycle plus worst-case one stall; branches add
  // two squash cycles; +8 margin drains the pipe.
  return static_cast<unsigned>(2 * n + 16);
}

CosimResult cosim(const DlxModel& m, const TestCase& tc, unsigned cycles,
                  const ErrorInjection& inj) {
  CosimResult r;
  r.spec = spec_run(tc, cycles);
  r.impl = impl_run(m, tc, cycles, inj);
  r.diff = r.spec.diff(r.impl);
  r.match = r.diff.empty();
  return r;
}

bool detects(const DlxModel& m, const TestCase& tc, const ErrorInjection& inj,
             unsigned cycles) {
  if (cycles == 0) cycles = drain_cycles(tc.imem.size());
  return !cosim(m, tc, cycles, inj).match;
}

}  // namespace hltg
