// Merged evaluation schedule over the two-level model.
//
// Within a cycle, controller gates and datapath modules form one acyclic
// combinational graph stitched together by the CTRL/STS bindings. This
// schedule topologically orders the three step kinds -
//   gate evaluation, CTRL-bundle packing (gate bits -> datapath ctrl net),
//   and datapath module evaluation -
// so one linear pass settles the whole cycle, replacing the generic
// fixpoint iteration (a ~3x simulator speedup at DLX scale).
#pragma once

#include <cstdint>
#include <vector>

#include "dlx/dlx.h"

namespace hltg {

struct EvalStep {
  enum Kind : std::uint8_t { kGate, kCtrlBind, kModule } kind;
  std::uint32_t index;  ///< GateId / ctrl_binds index / ModId
};

/// Build the schedule. Throws std::logic_error if the merged combinational
/// graph has a cycle (a modeling error).
std::vector<EvalStep> build_eval_schedule(const DlxModel& m);

}  // namespace hltg
