#include "sim/proc_sim.h"

#include <stdexcept>

#include "gatenet/eval3.h"
#include "netlist/eval.h"
#include "util/word.h"

namespace hltg {

ProcSim::ProcSim(const DlxModel& m, const TestCase& tc, ErrorInjection inj)
    : m_(m), inj_(std::move(inj)), imem_(tc.imem) {
  dpv_.assign(m_.dp.num_nets(), 0);
  load_reset2(m_.ctrl, gv_);
  rf_ = tc.rf_init;
  rf_[0] = 0;
  dmem_.load(tc.dmem_init);

  // Precompute per-net stuck masks (identity when no line is stuck).
  stuck_or_.assign(m_.dp.num_nets(), 0);
  stuck_and_.assign(m_.dp.num_nets(), ~std::uint64_t{0});
  for (const StuckLine& sl : inj_.stuck) {
    if (sl.stuck_value)
      stuck_or_[sl.net] |= std::uint64_t{1} << sl.bit;
    else
      stuck_and_[sl.net] &= ~(std::uint64_t{1} << sl.bit);
  }
  stall_gate_ = m_.ctrl.find("cg.stall");
  redirect_gate_ = m_.ctrl.find("cg.redirect");
  sched_ = build_eval_schedule(m_);
  sts_net_of_gate_.assign(m_.ctrl.num_gates(), kNoNet);
  for (const StsBind& sb : m_.sts_binds) sts_net_of_gate_[sb.gate] = sb.dp_net;

  // Initialize register outputs to their reset values (with injection).
  bool dummy = false;
  for (ModId i = 0; i < m_.dp.num_modules(); ++i) {
    const Module& mod = m_.dp.module(i);
    if (mod.kind == ModuleKind::kReg) set_net(mod.out, mod.param, &dummy);
  }
}

void ProcSim::set_net(NetId n, std::uint64_t v, bool* changed) {
  v = trunc(v, m_.dp.net(n).width);
  v = (v | stuck_or_[n]) & stuck_and_[n];
  v = trunc(v, m_.dp.net(n).width);
  if (dpv_[n] != v) {
    dpv_[n] = v;
    *changed = true;
  }
}

std::uint32_t ProcSim::pc() const {
  return static_cast<std::uint32_t>(dpv_[m_.sig.pc_q]);
}

void ProcSim::fetch() {
  const std::uint32_t pc = this->pc();
  const std::size_t idx = pc / 4;
  const std::uint32_t word =
      (pc % 4 == 0 && idx < imem_.size()) ? imem_[idx] : 0;
  bool dummy = false;
  set_net(m_.sig.instr, word, &dummy);
  // CPI = opcode bits then func bits.
  for (int i = 0; i < 6; ++i) {
    gv_[m_.cpi[i]] = get_bit(word, 26 + i);
    gv_[m_.cpi[6 + i]] = get_bit(word, i);
  }
}

std::uint64_t ProcSim::eval_module(const Module& mod) const {
  const ModId id = static_cast<ModId>(&mod - &m_.dp.module(0));
  // Scratch buffers avoid per-module allocations on the hot path.
  std::vector<std::uint64_t>& in = scratch_in_;
  std::vector<std::uint64_t>& ctrl = scratch_ctrl_;
  in.clear();
  ctrl.clear();
  for (unsigned i = 0; i < mod.data_in.size(); ++i) {
    NetId src = mod.data_in[i];
    if (!inj_.rewire.empty()) {
      if (const auto it = inj_.rewire.find({id, i}); it != inj_.rewire.end())
        src = it->second;
    }
    in.push_back(dpv_[src]);
  }
  for (NetId n : mod.ctrl_in) ctrl.push_back(dpv_[n]);
  if (!inj_.swap_inputs.empty() && inj_.swap_inputs.count(id) &&
      in.size() >= 2)
    std::swap(in[0], in[1]);
  if (!inj_.substitute.empty()) {
    if (const auto it = inj_.substitute.find(id);
        it != inj_.substitute.end()) {
      Module local = mod;
      local.kind = it->second;
      return eval_comb(m_.dp, local, in, ctrl);
    }
  }
  return eval_comb(m_.dp, mod, in, ctrl);
}

void ProcSim::eval_fixpoint() {
  // One linear pass over the merged (gates + ctrl bundles + modules)
  // topological schedule settles the cycle exactly; see sim/schedule.h.
  const Module& rfw = m_.dp.module(m_.rf_write_mod);
  bool changed = false;
  for (const EvalStep& st : sched_) {
    switch (st.kind) {
      case EvalStep::kGate: {
        const GateId g = st.index;
        const Gate& gate = m_.ctrl.gate(g);
        if (gate.kind == GateKind::kDff) break;  // state
        if (gate.kind == GateKind::kVar) {
          // STS-bound vars sample the datapath; CPI vars were set by fetch.
          if (sts_net_of_gate_[g] != kNoNet)
            gv_[g] = dpv_[sts_net_of_gate_[g]] & 1;
          break;
        }
        gv_[g] = eval_gate2(m_.ctrl, g, gv_);
        break;
      }
      case EvalStep::kCtrlBind: {
        const CtrlBind& cb = m_.ctrl_binds[st.index];
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < cb.bits.size(); ++i)
          if (gv_[cb.bits[i]]) v |= std::uint64_t{1} << i;
        set_net(cb.dp_net, v, &changed);
        break;
      }
      case EvalStep::kModule: {
        const Module& mod = m_.dp.module(st.index);
        switch (mod.kind) {
          case ModuleKind::kReg:
          case ModuleKind::kInput:
          case ModuleKind::kOutput:
          case ModuleKind::kRfWrite:
          case ModuleKind::kMemWrite:
            break;  // state / externally driven / sinks
          case ModuleKind::kRfRead: {
            const unsigned addr =
                static_cast<unsigned>(dpv_[mod.data_in[0]] & 31);
            const unsigned waddr =
                static_cast<unsigned>(dpv_[rfw.data_in[0]] & 31);
            const bool we = dpv_[rfw.ctrl_in[0]] & 1;
            std::uint32_t v;
            if (addr == 0)
              v = 0;
            else if (we && waddr == addr)  // write-through
              v = static_cast<std::uint32_t>(dpv_[rfw.data_in[1]]);
            else
              v = rf_[addr];
            set_net(mod.out, v, &changed);
            break;
          }
          case ModuleKind::kMemRead: {
            const bool re = dpv_[mod.ctrl_in[0]] & 1;
            const std::uint32_t addr =
                static_cast<std::uint32_t>(dpv_[mod.data_in[0]]);
            set_net(mod.out, re ? dmem_.read_word(addr) : 0, &changed);
            break;
          }
          default:
            set_net(mod.out, eval_module(mod), &changed);
            break;
        }
        break;
      }
    }
  }
}

void ProcSim::clock_edge() {
  // Register next-state values: q' = clr ? 0 : (en ? d : q).
  std::vector<std::pair<NetId, std::uint64_t>> next;
  for (ModId mi = 0; mi < m_.dp.num_modules(); ++mi) {
    const Module& mod = m_.dp.module(mi);
    if (mod.kind != ModuleKind::kReg) continue;
    const bool has_en = mod.tag & 1, has_clr = mod.tag & 2;
    unsigned slot = 0;
    const bool en = has_en ? (dpv_[mod.ctrl_in[slot++]] & 1) : true;
    const bool clr = has_clr ? (dpv_[mod.ctrl_in[slot]] & 1) : false;
    std::uint64_t q = dpv_[mod.out];
    if (clr)
      q = 0;
    else if (en)
      q = dpv_[mod.data_in[0]];
    next.emplace_back(mod.out, q);
  }

  // Architectural state updates.
  const Module& rfw = m_.dp.module(m_.rf_write_mod);
  if (dpv_[rfw.ctrl_in[0]] & 1) {
    const unsigned addr = static_cast<unsigned>(dpv_[rfw.data_in[0]] & 31);
    if (addr != 0) rf_[addr] = static_cast<std::uint32_t>(dpv_[rfw.data_in[1]]);
    ++committed_;
  }
  const Module& mw = m_.dp.module(m_.mem_write_mod);
  if (dpv_[mw.ctrl_in[0]] & 1) {
    const std::uint32_t addr = static_cast<std::uint32_t>(dpv_[mw.data_in[0]]);
    std::uint32_t data = static_cast<std::uint32_t>(dpv_[mw.data_in[1]]);
    const unsigned mask = static_cast<unsigned>(dpv_[mw.data_in[2]] & 0xF);
    // The observable port shows only enabled byte lanes.
    for (unsigned b = 0; b < 4; ++b)
      if (!(mask & (1u << b)))
        data = static_cast<std::uint32_t>(set_field(data, 8 * b, 8, 0));
    dmem_.write_word(addr, data, mask);
    writes_.push_back({addr & ~3u, data, mask});
  }

  // Statistics from the controller's tertiary signals.
  if (stall_gate_ != kNoGate && gv_[stall_gate_]) ++stalls_;
  if (redirect_gate_ != kNoGate && gv_[redirect_gate_]) ++squashes_;

  // Latch the new register values (with injection applied).
  bool dummy = false;
  for (auto [net, v] : next) set_net(net, v, &dummy);
  std::vector<bool> gnext = gv_;
  clock_dffs2(m_.ctrl, gv_, gnext);
  gv_ = std::move(gnext);
  ++cycle_;
}

void ProcSim::begin_cycle() {
  fetch();
  eval_fixpoint();
}

void ProcSim::end_cycle() { clock_edge(); }

void ProcSim::step() {
  begin_cycle();
  end_cycle();
}

ArchTrace ProcSim::arch_trace() const {
  ArchTrace t;
  t.writes = writes_;
  for (unsigned r = 0; r < 32; ++r) t.rf_final[r] = reg(r);
  return t;
}

ArchTrace ProcSim::run(unsigned cycles) {
  for (unsigned c = 0; c < cycles; ++c) step();
  return arch_trace();
}

ArchTrace impl_run(const DlxModel& m, const TestCase& tc, unsigned cycles,
                   const ErrorInjection& inj) {
  ProcSim sim(m, tc, inj);
  return sim.run(cycles);
}

}  // namespace hltg
