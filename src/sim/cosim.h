// Co-simulation of specification (ISA model) vs pipelined implementation.
//
// This is the detection oracle of the verification methodology: a test
// detects an injected design error iff the erroneous implementation's
// architectural trace differs from the specification's trace on that test.
#pragma once

#include <string>

#include "isa/spec_sim.h"
#include "sim/proc_sim.h"

namespace hltg {

struct CosimResult {
  ArchTrace spec;
  ArchTrace impl;
  bool match = false;
  std::string diff;
};

/// Number of cycles needed for a straight-line program of `n` instructions
/// to drain the 5-stage pipe with margin for stalls and squashes.
unsigned drain_cycles(std::size_t n);

/// Run spec for `cycles` instructions and implementation for `cycles`
/// cycles, then compare traces. With an empty injection this validates the
/// implementation; with an injection, a mismatch means the test detects the
/// error.
CosimResult cosim(const DlxModel& m, const TestCase& tc, unsigned cycles,
                  const ErrorInjection& inj = {});

/// True iff the injected error is detected by `tc` (trace mismatch).
bool detects(const DlxModel& m, const TestCase& tc, const ErrorInjection& inj,
             unsigned cycles = 0 /* 0: derive from program length */);

}  // namespace hltg
