#include "sim/schedule.h"

#include <stdexcept>

namespace hltg {

std::vector<EvalStep> build_eval_schedule(const DlxModel& m) {
  // Node numbering: [0, G) gates, [G, G+B) ctrl bundles, [G+B, G+B+M) modules.
  const std::size_t G = m.ctrl.num_gates();
  const std::size_t B = m.ctrl_binds.size();
  const std::size_t M = m.dp.num_modules();
  const std::size_t N = G + B + M;
  std::vector<std::vector<std::uint32_t>> succ(N);
  std::vector<unsigned> indeg(N, 0);
  auto add_edge = [&](std::size_t from, std::size_t to) {
    succ[from].push_back(static_cast<std::uint32_t>(to));
    ++indeg[to];
  };

  auto gate_is_source = [&](GateId g) {
    const GateKind k = m.ctrl.gate(g).kind;
    return k == GateKind::kDff || k == GateKind::kConst0 ||
           k == GateKind::kConst1;
  };
  auto mod_is_seq_source = [&](ModId mi) {
    const ModuleKind k = m.dp.module(mi).kind;
    return k == ModuleKind::kReg || k == ModuleKind::kRfRead ||
           k == ModuleKind::kMemRead || k == ModuleKind::kInput ||
           k == ModuleKind::kConst;
  };

  // Map: which ctrl-bind (if any) drives each datapath net; which STS net
  // feeds each var gate.
  std::vector<int> bind_of_net(m.dp.num_nets(), -1);
  for (std::size_t b = 0; b < B; ++b)
    bind_of_net[m.ctrl_binds[b].dp_net] = static_cast<int>(b);
  std::vector<NetId> sts_of_gate(G, kNoNet);
  for (const StsBind& sb : m.sts_binds) sts_of_gate[sb.gate] = sb.dp_net;

  // Dependencies of a datapath net's *value*: the driving module, or the
  // ctrl bundle that packs it. Sequential drivers impose no ordering.
  auto net_dep = [&](NetId n) -> long {
    if (bind_of_net[n] >= 0) return static_cast<long>(G) + bind_of_net[n];
    const ModId d = m.dp.net(n).driver;
    if (d == kNoMod || mod_is_seq_source(d)) return -1;
    return static_cast<long>(G + B) + d;
  };

  // Gate edges.
  for (GateId g = 0; g < G; ++g) {
    const Gate& gate = m.ctrl.gate(g);
    if (gate.kind == GateKind::kDff) continue;  // D consumed at the edge
    if (gate.kind == GateKind::kVar) {
      const NetId sts = sts_of_gate[g];
      if (sts != kNoNet) {
        const long dep = net_dep(sts);
        if (dep >= 0) add_edge(static_cast<std::size_t>(dep), g);
      }
      continue;  // CPI vars: externally supplied
    }
    for (GateId in : gate.fanin)
      if (!gate_is_source(in) ) {
        // A var gate fed by a STS net is itself ordered after that net's
        // producer, so depending on the var gate is sufficient; vars with
        // no STS feed are sources.
        if (m.ctrl.gate(in).kind == GateKind::kVar &&
            sts_of_gate[in] == kNoNet)
          continue;
        add_edge(in, g);
      }
  }

  // Ctrl-bundle edges: after every bit's gate.
  for (std::size_t b = 0; b < B; ++b)
    for (GateId g : m.ctrl_binds[b].bits) add_edge(g, G + b);

  // Module edges: after every combinational input dependency. RfRead also
  // reads the write port's nets (write-through), MemRead its enable.
  for (ModId mi = 0; mi < M; ++mi) {
    const Module& mod = m.dp.module(mi);
    auto dep_on_net = [&](NetId n) {
      const long dep = net_dep(n);
      if (dep >= 0) add_edge(static_cast<std::size_t>(dep), G + B + mi);
    };
    for (unsigned i = 0; i < mod.num_inputs(); ++i) dep_on_net(mod.input(i));
    if (mod.kind == ModuleKind::kRfRead) {
      const Module& rfw = m.dp.module(m.rf_write_mod);
      for (unsigned i = 0; i < rfw.num_inputs(); ++i)
        dep_on_net(rfw.input(i));
    }
  }

  // Kahn topological sort.
  std::vector<std::uint32_t> q;
  q.reserve(N);
  for (std::size_t n = 0; n < N; ++n)
    if (indeg[n] == 0) q.push_back(static_cast<std::uint32_t>(n));
  std::vector<EvalStep> steps;
  steps.reserve(N);
  for (std::size_t qi = 0; qi < q.size(); ++qi) {
    const std::uint32_t n = q[qi];
    EvalStep st;
    if (n < G) {
      st.kind = EvalStep::kGate;
      st.index = n;
    } else if (n < G + B) {
      st.kind = EvalStep::kCtrlBind;
      st.index = n - static_cast<std::uint32_t>(G);
    } else {
      st.kind = EvalStep::kModule;
      st.index = n - static_cast<std::uint32_t>(G + B);
    }
    steps.push_back(st);
    for (std::uint32_t s : succ[n])
      if (--indeg[s] == 0) q.push_back(s);
  }
  if (steps.size() != N)
    throw std::logic_error(
        "combinational cycle in the merged controller/datapath graph");
  return steps;
}

}  // namespace hltg
