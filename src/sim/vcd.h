// VCD (IEEE 1364 value-change dump) writer for the implementation
// simulator: record any subset of datapath nets / controller gates per
// cycle and dump a waveform readable by GTKWave & co.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/proc_sim.h"

namespace hltg {

class VcdWriter {
 public:
  explicit VcdWriter(const DlxModel& m) : m_(m) {}

  /// Select signals to record. Call before the first sample. Adding all
  /// nets is fine for this model's size.
  void add_net(NetId n);
  void add_gate(GateId g);
  void add_all_nets();
  void add_stage_nets(Stage s);

  /// Sample the simulator's current (combinationally settled) values; call
  /// once per cycle between begin_cycle() and end_cycle().
  void sample(const ProcSim& sim);

  /// Render the complete VCD document.
  std::string render() const;

 private:
  struct Sig {
    bool is_gate = false;
    std::uint32_t id = 0;
    unsigned width = 1;
    std::string name;
    std::string code;  ///< VCD identifier code
  };
  static std::string code_for(std::size_t index);

  const DlxModel& m_;
  std::vector<Sig> sigs_;
  std::vector<std::vector<std::uint64_t>> samples_;  ///< [cycle][signal]
};

/// Convenience: run `cycles` of a simulation recording every datapath net
/// and the tertiary controller signals; returns the VCD text.
std::string dump_vcd(const DlxModel& m, const TestCase& tc, unsigned cycles,
                     const ErrorInjection& inj = {});

}  // namespace hltg
