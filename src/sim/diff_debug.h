// Mismatch localization: when an injected error makes the implementation
// diverge, find the first cycle where the erroneous machine departs from
// the good one and report the differing buses - the first thing a
// verification engineer asks of a failing trace.
#pragma once

#include <string>
#include <vector>

#include "core/archstate.h"

namespace hltg {

struct NetDivergence {
  NetId net = kNoNet;
  unsigned cycle = 0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
};

struct DivergenceReport {
  bool diverged = false;
  unsigned first_cycle = 0;
  /// Differing nets at the first divergent cycle (error-cone frontier).
  std::vector<NetDivergence> first_diffs;
  /// Number of differing nets per cycle (error-cone growth profile).
  std::vector<unsigned> spread;

  std::string to_string(const Netlist& nl) const;
};

/// Compare good vs injected runs over `cycles`.
DivergenceReport diff_runs(const DlxModel& m, const TestCase& tc,
                           unsigned cycles, const ErrorInjection& inj);

}  // namespace hltg
