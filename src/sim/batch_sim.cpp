#include "sim/batch_sim.h"

#include <array>

#include "netlist/eval.h"
#include "sim/cosim.h"
#include "sim/schedule.h"
#include "util/word.h"

namespace hltg {

namespace {

/// Lane-indexed mirror of ProcSim: shared wide controller words per gate
/// (gatenet/evalw), per-lane scalar datapath state. Kept cycle-for-cycle
/// equivalent to ProcSim; any behavioural change there must land here too.
class BatchSim {
 public:
  BatchSim(const DlxModel& m, const TestCase& tc,
           const std::vector<const ErrorInjection*>& lanes)
      : m_(m),
        lanes_(lanes),
        nets_(m.dp.num_nets()),
        words_(lane_words(static_cast<unsigned>(lanes.size()))),
        imem_(tc.imem) {
    const std::size_t n = lanes_.size();
    dpv_.assign(n * nets_, 0);
    stuck_or_.assign(n * nets_, 0);
    stuck_and_.assign(n * nets_, ~std::uint64_t{0});
    rf_.assign(n, tc.rf_init);
    dmem_.resize(n);
    matched_writes_.assign(n, 0);
    load_resetw(m_.ctrl, gv_, words_);
    for (std::size_t lane = 0; lane < n; ++lane) {
      rf_[lane][0] = 0;
      dmem_[lane].load(tc.dmem_init);
      for (const StuckLine& sl : lanes_[lane]->stuck) {
        if (sl.stuck_value)
          stuck_or_[lane * nets_ + sl.net] |= std::uint64_t{1} << sl.bit;
        else
          stuck_and_[lane * nets_ + sl.net] &= ~(std::uint64_t{1} << sl.bit);
      }
    }
    sched_ = build_eval_schedule(m_);
    sts_net_of_gate_.assign(m_.ctrl.num_gates(), kNoNet);
    for (const StsBind& sb : m_.sts_binds) sts_net_of_gate_[sb.gate] = sb.dp_net;
    for (ModId i = 0; i < m_.dp.num_modules(); ++i)
      if (m_.dp.module(i).kind == ModuleKind::kReg) reg_mods_.push_back(i);

    // Live mask: the low `n` lanes across the mask words.
    live_.assign(words_, 0);
    detected_.assign(words_, 0);
    for (std::size_t lane = 0; lane < n; ++lane)
      live_[lane >> 6] |= std::uint64_t{1} << (lane & 63);

    backend_ = backend_for(words_);

    // Initialize register outputs to their reset values (with injection).
    for (std::size_t lane = 0; lane < n; ++lane)
      for (ModId i : reg_mods_) {
        const Module& mod = m_.dp.module(i);
        set_net(lane, mod.out, mod.param);
      }
  }

  /// Run `cycles` cycles against `spec`; returns the detection mask words.
  std::vector<std::uint64_t> run_detect(const ArchTrace& spec,
                                        unsigned cycles) {
    for (unsigned c = 0; c < cycles && any_live(); ++c) {
      fetch();
      eval_pass();
      clock_edge(&spec);
    }
    // Lanes that survived the run undetected: their store sequence matched
    // the spec prefix; they mismatch iff they stored too few words or ended
    // with a different register file.
    std::vector<std::uint64_t> mask = detected_;
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      if (!lane_live(lane)) continue;
      if (matched_writes_[lane] != spec.writes.size()) {
        mask[lane >> 6] |= std::uint64_t{1} << (lane & 63);
        continue;
      }
      for (unsigned r = 0; r < 32; ++r)
        if (reg(lane, r) != spec.rf_final[r]) {
          mask[lane >> 6] |= std::uint64_t{1} << (lane & 63);
          break;
        }
    }
    return mask;
  }

  /// Run `cycles` cycles recording every lane's settled net/gate values per
  /// cycle (ProcSim::begin_cycle points). No spec comparison: lanes never
  /// freeze.
  std::vector<LaneCapture> run_capture(unsigned cycles) {
    std::vector<LaneCapture> out(lanes_.size());
    for (LaneCapture& lc : out) {
      lc.nets.reserve(cycles);
      lc.gates.reserve(cycles);
    }
    const std::size_t ngates = m_.ctrl.num_gates();
    for (unsigned c = 0; c < cycles; ++c) {
      fetch();
      eval_pass();
      for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
        std::vector<std::uint64_t> nv(nets_);
        for (NetId n = 0; n < nets_; ++n) nv[n] = dpv(lane, n);
        std::vector<std::uint8_t> gvals(ngates);
        for (GateId g = 0; g < ngates; ++g)
          gvals[g] = gate_bit(g, lane) ? 1 : 0;
        out[lane].nets.push_back(std::move(nv));
        out[lane].gates.push_back(std::move(gvals));
      }
      clock_edge(nullptr);
    }
    return out;
  }

  std::uint64_t controller_passes() const { return controller_passes_; }
  std::uint64_t gate_evals() const { return gate_evals_; }
  LaneBackend backend() const { return backend_; }

 private:
  std::uint64_t dpv(std::size_t lane, NetId n) const {
    return dpv_[lane * nets_ + n];
  }
  std::uint32_t reg(std::size_t lane, unsigned r) const {
    return r == 0 ? 0 : rf_[lane][r];
  }
  bool lane_live(std::size_t lane) const {
    return (live_[lane >> 6] >> (lane & 63)) & 1;
  }
  bool any_live() const {
    for (std::uint64_t w : live_)
      if (w) return true;
    return false;
  }

  void set_net(std::size_t lane, NetId n, std::uint64_t v) {
    const std::size_t at = lane * nets_ + n;
    v = trunc(v, m_.dp.net(n).width);
    v = (v | stuck_or_[at]) & stuck_and_[at];
    dpv_[at] = trunc(v, m_.dp.net(n).width);
  }

  bool gate_bit(GateId g, std::size_t lane) const {
    return (gv_[std::size_t{g} * words_ + (lane >> 6)] >> (lane & 63)) & 1;
  }

  void set_gate_bit(GateId g, std::size_t lane, bool v) {
    std::uint64_t& w = gv_[std::size_t{g} * words_ + (lane >> 6)];
    const std::uint64_t bit = std::uint64_t{1} << (lane & 63);
    w = v ? (w | bit) : (w & ~bit);
  }

  void fetch() {
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      if (!lane_live(lane)) continue;
      const std::uint32_t pc =
          static_cast<std::uint32_t>(dpv(lane, m_.sig.pc_q));
      const std::size_t idx = pc / 4;
      const std::uint32_t word =
          (pc % 4 == 0 && idx < imem_.size()) ? imem_[idx] : 0;
      set_net(lane, m_.sig.instr, word);
      for (int i = 0; i < 6; ++i) {
        set_gate_bit(m_.cpi[i], lane, get_bit(word, 26 + i));
        set_gate_bit(m_.cpi[6 + i], lane, get_bit(word, i));
      }
    }
  }

  std::uint64_t eval_module(std::size_t lane, const Module& mod) const {
    const ModId id = static_cast<ModId>(&mod - &m_.dp.module(0));
    const ErrorInjection& inj = *lanes_[lane];
    std::vector<std::uint64_t>& in = scratch_in_;
    std::vector<std::uint64_t>& ctrl = scratch_ctrl_;
    in.clear();
    ctrl.clear();
    for (unsigned i = 0; i < mod.data_in.size(); ++i) {
      NetId src = mod.data_in[i];
      if (!inj.rewire.empty()) {
        if (const auto it = inj.rewire.find({id, i}); it != inj.rewire.end())
          src = it->second;
      }
      in.push_back(dpv(lane, src));
    }
    for (NetId n : mod.ctrl_in) ctrl.push_back(dpv(lane, n));
    if (!inj.swap_inputs.empty() && inj.swap_inputs.count(id) && in.size() >= 2)
      std::swap(in[0], in[1]);
    if (!inj.substitute.empty()) {
      if (const auto it = inj.substitute.find(id); it != inj.substitute.end()) {
        Module local = mod;
        local.kind = it->second;
        return eval_comb(m_.dp, local, in, ctrl);
      }
    }
    return eval_comb(m_.dp, mod, in, ctrl);
  }

  void eval_pass() {
    ++controller_passes_;
    const Module& rfw = m_.dp.module(m_.rf_write_mod);
    for (const EvalStep& st : sched_) {
      switch (st.kind) {
        case EvalStep::kGate: {
          const GateId g = st.index;
          const Gate& gate = m_.ctrl.gate(g);
          if (gate.kind == GateKind::kDff) break;  // state
          if (gate.kind == GateKind::kVar) {
            // STS-bound vars sample each lane's datapath; CPI vars were set
            // by fetch.
            const NetId sn = sts_net_of_gate_[g];
            if (sn != kNoNet)
              for (std::size_t lane = 0; lane < lanes_.size(); ++lane)
                set_gate_bit(g, lane, dpv(lane, sn) & 1);
            break;
          }
          eval_gatew(m_.ctrl, g, gv_.data(), words_, backend_);
          ++gate_evals_;
          break;
        }
        case EvalStep::kCtrlBind: {
          const CtrlBind& cb = m_.ctrl_binds[st.index];
          for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
            if (!lane_live(lane)) continue;
            std::uint64_t v = 0;
            for (std::size_t i = 0; i < cb.bits.size(); ++i)
              if (gate_bit(cb.bits[i], lane)) v |= std::uint64_t{1} << i;
            set_net(lane, cb.dp_net, v);
          }
          break;
        }
        case EvalStep::kModule: {
          const Module& mod = m_.dp.module(st.index);
          switch (mod.kind) {
            case ModuleKind::kReg:
            case ModuleKind::kInput:
            case ModuleKind::kOutput:
            case ModuleKind::kRfWrite:
            case ModuleKind::kMemWrite:
              break;  // state / externally driven / sinks
            case ModuleKind::kRfRead:
              for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
                if (!lane_live(lane)) continue;
                const unsigned addr =
                    static_cast<unsigned>(dpv(lane, mod.data_in[0]) & 31);
                const unsigned waddr =
                    static_cast<unsigned>(dpv(lane, rfw.data_in[0]) & 31);
                const bool we = dpv(lane, rfw.ctrl_in[0]) & 1;
                std::uint32_t v;
                if (addr == 0)
                  v = 0;
                else if (we && waddr == addr)  // write-through
                  v = static_cast<std::uint32_t>(dpv(lane, rfw.data_in[1]));
                else
                  v = rf_[lane][addr];
                set_net(lane, mod.out, v);
              }
              break;
            case ModuleKind::kMemRead:
              for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
                if (!lane_live(lane)) continue;
                const bool re = dpv(lane, mod.ctrl_in[0]) & 1;
                const std::uint32_t addr =
                    static_cast<std::uint32_t>(dpv(lane, mod.data_in[0]));
                set_net(lane, mod.out,
                        re ? dmem_[lane].read_word(addr) : 0);
              }
              break;
            default:
              for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
                if (!lane_live(lane)) continue;
                set_net(lane, mod.out, eval_module(lane, mod));
              }
              break;
          }
          break;
        }
      }
    }
  }

  /// Clock edge; with `spec` the incremental store-trace comparison detects
  /// and freezes diverging lanes, without it (capture mode) lanes run on.
  void clock_edge(const ArchTrace* spec) {
    const Module& rfw = m_.dp.module(m_.rf_write_mod);
    const Module& mw = m_.dp.module(m_.mem_write_mod);
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      if (!lane_live(lane)) continue;
      const std::uint64_t bit = std::uint64_t{1} << (lane & 63);

      // Register next-state values: q' = clr ? 0 : (en ? d : q).
      next_.clear();
      for (ModId mi : reg_mods_) {
        const Module& mod = m_.dp.module(mi);
        const bool has_en = mod.tag & 1, has_clr = mod.tag & 2;
        unsigned slot = 0;
        const bool en = has_en ? (dpv(lane, mod.ctrl_in[slot++]) & 1) : true;
        const bool clr = has_clr ? (dpv(lane, mod.ctrl_in[slot]) & 1) : false;
        std::uint64_t q = dpv(lane, mod.out);
        if (clr)
          q = 0;
        else if (en)
          q = dpv(lane, mod.data_in[0]);
        next_.emplace_back(mod.out, q);
      }

      // Architectural state updates.
      if (dpv(lane, rfw.ctrl_in[0]) & 1) {
        const unsigned addr =
            static_cast<unsigned>(dpv(lane, rfw.data_in[0]) & 31);
        if (addr != 0)
          rf_[lane][addr] =
              static_cast<std::uint32_t>(dpv(lane, rfw.data_in[1]));
      }
      if (dpv(lane, mw.ctrl_in[0]) & 1) {
        const std::uint32_t addr =
            static_cast<std::uint32_t>(dpv(lane, mw.data_in[0]));
        std::uint32_t data =
            static_cast<std::uint32_t>(dpv(lane, mw.data_in[1]));
        const unsigned mask =
            static_cast<unsigned>(dpv(lane, mw.data_in[2]) & 0xF);
        for (unsigned b = 0; b < 4; ++b)
          if (!(mask & (1u << b)))
            data = static_cast<std::uint32_t>(set_field(data, 8 * b, 8, 0));
        dmem_[lane].write_word(addr, data, mask);
        if (spec) {
          // Incremental trace comparison: a store that differs from the
          // specification's store at the same position - or overflows the
          // specification's store count - is a permanent mismatch, so the
          // lane is detected and frozen.
          const MemWrite w{addr & ~3u, data, mask};
          const std::size_t k = matched_writes_[lane]++;
          if (k >= spec->writes.size() || !(spec->writes[k] == w)) {
            detected_[lane >> 6] |= bit;
            live_[lane >> 6] &= ~bit;
            continue;  // skip the register latch: the lane is frozen
          }
        }
      }

      // Latch the new register values (with injection applied).
      for (auto [net, v] : next_) set_net(lane, net, v);
    }
    // Controller pipe registers: all lanes in one pass.
    clock_dffsw(m_.ctrl, gv_.data(), words_, dff_scratch_);
  }

  const DlxModel& m_;
  const std::vector<const ErrorInjection*>& lanes_;
  const std::size_t nets_;
  const unsigned words_;  ///< 64-bit words per gate (lanes / 64 rounded up)
  std::vector<std::uint32_t> imem_;
  std::vector<std::uint64_t> dpv_;  ///< [lane * nets_ + net]
  std::vector<std::uint64_t> stuck_or_, stuck_and_;
  std::vector<std::uint64_t> gv_;   ///< [gate * words_ + w], bit k = lane
                                    ///< 64*w + k
  std::vector<std::array<std::uint32_t, 32>> rf_;
  std::vector<SparseMemory> dmem_;
  std::vector<std::size_t> matched_writes_;
  std::vector<std::uint64_t> live_, detected_;  ///< mask words
  std::vector<EvalStep> sched_;
  std::vector<NetId> sts_net_of_gate_;
  std::vector<ModId> reg_mods_;
  LaneBackend backend_ = LaneBackend::kScalar;
  std::uint64_t controller_passes_ = 0;
  std::uint64_t gate_evals_ = 0;
  mutable std::vector<std::uint64_t> scratch_in_, scratch_ctrl_;
  std::vector<std::pair<NetId, std::uint64_t>> next_;
  std::vector<std::uint64_t> dff_scratch_;
};

void fold_stats(BatchSimStats* stats, const BatchSim& sim,
                std::size_t lanes, unsigned width) {
  if (!stats) return;
  ++stats->batches;
  stats->controller_passes += sim.controller_passes();
  stats->gate_evals += sim.gate_evals();
  stats->lanes_evaluated += lanes;
  stats->lane_width = width;
  stats->backend = sim.backend();
}

}  // namespace

std::vector<std::uint64_t> batch_detectw(
    const DlxModel& m, const TestCase& tc, const ArchTrace& spec,
    unsigned cycles, const std::vector<const ErrorInjection*>& lanes,
    BatchSimStats* stats) {
  BatchSim sim(m, tc, lanes);
  std::vector<std::uint64_t> mask = sim.run_detect(spec, cycles);
  fold_stats(stats, sim, lanes.size(),
             lane_words(static_cast<unsigned>(lanes.size())) * 64);
  return mask;
}

std::uint64_t batch_detect64(const DlxModel& m, const TestCase& tc,
                             const ArchTrace& spec, unsigned cycles,
                             const std::vector<const ErrorInjection*>& lanes) {
  return batch_detectw(m, tc, spec, cycles, lanes)[0];
}

std::vector<LaneCapture> batch_capture(
    const DlxModel& m, const TestCase& tc, unsigned cycles,
    const std::vector<const ErrorInjection*>& lanes, BatchSimStats* stats) {
  BatchSim sim(m, tc, lanes);
  std::vector<LaneCapture> out = sim.run_capture(cycles);
  fold_stats(stats, sim, lanes.size(),
             lane_words(static_cast<unsigned>(lanes.size())) * 64);
  return out;
}

std::vector<bool> detect_errors(const DlxModel& m, const TestCase& tc,
                                const std::vector<const DesignError*>& errors,
                                const BatchDetectConfig& cfg) {
  std::vector<bool> out(errors.size(), false);
  if (errors.empty()) return out;
  const unsigned cycles =
      cfg.cycles ? cfg.cycles : drain_cycles(tc.imem.size());
  if (cfg.force_scalar) {
    for (std::size_t i = 0; i < errors.size(); ++i)
      out[i] = detects(m, tc, errors[i]->injection(), cycles);
    return out;
  }
  const ArchTrace spec = spec_run(tc, cycles);
  const unsigned width = resolve_lanes(cfg.max_lanes);
  std::vector<ErrorInjection> injs;
  std::vector<const ErrorInjection*> lanes;
  std::vector<std::size_t> which;
  for (std::size_t base = 0; base < errors.size(); base += width) {
    const std::size_t end = std::min(errors.size(), base + width);
    injs.clear();
    lanes.clear();
    which.clear();
    injs.reserve(end - base);
    for (std::size_t i = base; i < end; ++i) {
      injs.push_back(errors[i]->injection());
      which.push_back(i);
    }
    for (const ErrorInjection& inj : injs) lanes.push_back(&inj);
    const std::vector<std::uint64_t> mask =
        batch_detectw(m, tc, spec, cycles, lanes, cfg.stats);
    if (cfg.stats) cfg.stats->lane_width = width;
    for (std::size_t k = 0; k < which.size(); ++k)
      if ((mask[k >> 6] >> (k & 63)) & 1) out[which[k]] = true;
  }
  return out;
}

BatchDetectFn batch_detector(const DlxModel& m, BatchDetectConfig cfg) {
  return [&m, cfg](const TestCase& tc,
                   const std::vector<const DesignError*>& errors) {
    return detect_errors(m, tc, errors, cfg);
  };
}

}  // namespace hltg
