#include "sim/diff_debug.h"

#include <sstream>

#include "util/word.h"

namespace hltg {

DivergenceReport diff_runs(const DlxModel& m, const TestCase& tc,
                           unsigned cycles, const ErrorInjection& inj) {
  DivergenceReport rep;
  const WindowCapture good = capture_window(m, tc, cycles);
  const WindowCapture bad = capture_window(m, tc, cycles, inj);
  rep.spread.assign(cycles, 0);
  for (unsigned t = 0; t < cycles; ++t) {
    unsigned diffs = 0;
    for (NetId n = 0; n < m.dp.num_nets(); ++n) {
      if (good.net(t, n) == bad.net(t, n)) continue;
      ++diffs;
      if (!rep.diverged) {
        rep.first_diffs.push_back(
            {n, t, good.net(t, n), bad.net(t, n)});
      }
    }
    rep.spread[t] = diffs;
    if (diffs && !rep.diverged) {
      rep.diverged = true;
      rep.first_cycle = t;
    }
  }
  return rep;
}

std::string DivergenceReport::to_string(const Netlist& nl) const {
  std::ostringstream os;
  if (!diverged) {
    os << "no divergence within the window\n";
    return os.str();
  }
  os << "first divergence at cycle " << first_cycle << ":\n";
  for (const NetDivergence& d : first_diffs)
    os << "  " << nl.net(d.net).name << " (stage "
       << hltg::to_string(nl.net(d.net).stage) << "): good "
       << to_hex(d.good, nl.net(d.net).width) << "  erroneous "
       << to_hex(d.bad, nl.net(d.net).width) << "\n";
  os << "error-cone size per cycle:";
  for (unsigned c : spread) os << " " << c;
  os << "\n";
  return os.str();
}

}  // namespace hltg
