// Batch (bit-parallel) error simulation: up to 64 erroneous machines on one
// candidate test in a single cycle-accurate simulation.
//
// The campaign's dropping pass asks "which of the remaining errors does this
// test fortuitously detect?" - an O(tests x errors) loop that the serial
// detector answers with one full cosim per (test, error) pair. Here the
// bit-level controller is evaluated once per cycle for all lanes at once
// (gatenet/eval64: bit k of every gate word is machine k), while the
// word-level datapath - whose 32-bit values cannot share bit-lanes - falls
// back to scalar per-lane evaluation inside the same cycle loop. The
// specification trace is computed once per test instead of once per pair,
// and a lane freezes as soon as its store sequence provably diverges from
// the specification (detection is monotone), so detected machines stop
// costing datapath work.
//
// Per-lane semantics are exactly ProcSim + ArchTrace::diff; the equivalence
// is cross-checked against the scalar `detects()` oracle in
// tests/test_eval64.cpp for all four error models.
#pragma once

#include <cstdint>
#include <vector>

#include "errors/campaign.h"
#include "errors/inject.h"
#include "sim/proc_sim.h"

namespace hltg {

struct BatchDetectConfig {
  unsigned max_lanes = 64;   ///< lanes per batch simulation (1..64)
  bool force_scalar = false; ///< use the serial per-error cosim (reference)
  unsigned cycles = 0;       ///< 0: derive from program length
};

/// One batch: simulate `lanes.size()` (<= 64) erroneous machines against
/// `tc` for `cycles` cycles and return the detection mask (bit k set iff
/// lane k's architectural trace differs from `spec`).
std::uint64_t batch_detect64(const DlxModel& m, const TestCase& tc,
                             const ArchTrace& spec, unsigned cycles,
                             const std::vector<const ErrorInjection*>& lanes);

/// Whole-population detector: chunks `errors` into <= max_lanes groups and
/// batch-simulates each; out[i] iff errors[i] is detected by `tc`.
std::vector<bool> detect_errors(const DlxModel& m, const TestCase& tc,
                                const std::vector<const DesignError*>& errors,
                                const BatchDetectConfig& cfg = {});

/// Adapter for run_campaign_with_dropping's batched detection oracle.
BatchDetectFn batch_detector(const DlxModel& m, BatchDetectConfig cfg = {});

}  // namespace hltg
