// Batch (bit-parallel) error simulation: up to kMaxLanes erroneous machines
// on one candidate test in a single cycle-accurate simulation.
//
// The campaign's dropping pass asks "which of the remaining errors does this
// test fortuitously detect?" - an O(tests x errors) loop that the serial
// detector answers with one full cosim per (test, error) pair. Here the
// bit-level controller is evaluated once per cycle for all lanes at once
// (gatenet/evalw: bit k of word w of every gate is machine 64*w + k), while
// the word-level datapath - whose 32-bit values cannot share bit-lanes -
// falls back to scalar per-lane evaluation inside the same cycle loop. The
// specification trace is computed once per test instead of once per pair,
// and a lane freezes as soon as its store sequence provably diverges from
// the specification (detection is monotone), so detected machines stop
// costing datapath work.
//
// Lane width follows resolve_lanes (CPUID auto, HLTG_LANES, or an explicit
// max_lanes); lanes never interact, so chunking a population at any width
// yields identical per-error outcomes - only the pass counters change.
//
// Per-lane semantics are exactly ProcSim + ArchTrace::diff; the equivalence
// is cross-checked against the scalar `detects()` oracle in
// tests/test_eval64.cpp and tests/test_evalw.cpp for all four error models.
#pragma once

#include <cstdint>
#include <vector>

#include "errors/campaign.h"
#include "errors/inject.h"
#include "gatenet/evalw.h"
#include "sim/proc_sim.h"

namespace hltg {

/// Work counters for the batch engine. Accumulated into the pointer a
/// caller passes (no internal locking: share one stats object only across
/// sequential calls).
struct BatchSimStats {
  std::uint64_t batches = 0;            ///< batch simulations run
  std::uint64_t controller_passes = 0;  ///< cycles evaluated (one full
                                        ///< controller sweep per cycle)
  std::uint64_t gate_evals = 0;         ///< wide single-gate evaluations
  std::uint64_t lanes_evaluated = 0;    ///< sum of lane counts over batches
  unsigned lane_width = 0;              ///< resolved lanes per batch
  LaneBackend backend = LaneBackend::kScalar;  ///< dispatched kernel
};

struct BatchDetectConfig {
  unsigned max_lanes = 0;     ///< lanes per batch; 0 = resolve_lanes() auto
  bool force_scalar = false;  ///< use the serial per-error cosim (reference)
  unsigned cycles = 0;        ///< 0: derive from program length
  BatchSimStats* stats = nullptr;  ///< optional work-counter sink
};

/// One batch: simulate `lanes.size()` (<= kMaxLanes) erroneous machines
/// against `tc` and return the detection mask words (bit k of word w set
/// iff lane 64*w + k's architectural trace differs from `spec`).
std::vector<std::uint64_t> batch_detectw(
    const DlxModel& m, const TestCase& tc, const ArchTrace& spec,
    unsigned cycles, const std::vector<const ErrorInjection*>& lanes,
    BatchSimStats* stats = nullptr);

/// 64-lane compatibility wrapper around batch_detectw.
std::uint64_t batch_detect64(const DlxModel& m, const TestCase& tc,
                             const ArchTrace& spec, unsigned cycles,
                             const std::vector<const ErrorInjection*>& lanes);

/// Per-lane full window capture: every net and gate value at the settled
/// point of every cycle, for up to kMaxLanes injections in one simulation.
/// Lane semantics match ProcSim::begin_cycle exactly; DPRELAX pairs its
/// good/erroneous machine captures through this (core/archstate.h).
struct LaneCapture {
  std::vector<std::vector<std::uint64_t>> nets;   ///< [t][net]
  std::vector<std::vector<std::uint8_t>> gates;   ///< [t][gate]
};
std::vector<LaneCapture> batch_capture(
    const DlxModel& m, const TestCase& tc, unsigned cycles,
    const std::vector<const ErrorInjection*>& lanes,
    BatchSimStats* stats = nullptr);

/// Whole-population detector: chunks `errors` into <= width groups and
/// batch-simulates each; out[i] iff errors[i] is detected by `tc`.
std::vector<bool> detect_errors(const DlxModel& m, const TestCase& tc,
                                const std::vector<const DesignError*>& errors,
                                const BatchDetectConfig& cfg = {});

/// Adapter for run_campaign_with_dropping's batched detection oracle.
BatchDetectFn batch_detector(const DlxModel& m, BatchDetectConfig cfg = {});

}  // namespace hltg
