#include "sim/vcd.h"

#include <sstream>

#include "dlx/export_verilog.h"
#include "util/word.h"

namespace hltg {

std::string VcdWriter::code_for(std::size_t index) {
  // Printable identifier codes ! .. ~ in a variable-length base-94 scheme.
  std::string s;
  do {
    s.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index);
  return s;
}

void VcdWriter::add_net(NetId n) {
  Sig s;
  s.is_gate = false;
  s.id = n;
  s.width = m_.dp.net(n).width;
  s.name = verilog_ident(m_.dp.net(n).name);
  s.code = code_for(sigs_.size());
  sigs_.push_back(std::move(s));
}

void VcdWriter::add_gate(GateId g) {
  Sig s;
  s.is_gate = true;
  s.id = g;
  s.width = 1;
  s.name = "ctrl_" + verilog_ident(m_.ctrl.gate(g).name);
  s.code = code_for(sigs_.size());
  sigs_.push_back(std::move(s));
}

void VcdWriter::add_all_nets() {
  for (NetId n = 0; n < m_.dp.num_nets(); ++n) add_net(n);
}

void VcdWriter::add_stage_nets(Stage st) {
  for (NetId n = 0; n < m_.dp.num_nets(); ++n)
    if (m_.dp.net(n).stage == st) add_net(n);
}

void VcdWriter::sample(const ProcSim& sim) {
  std::vector<std::uint64_t> row;
  row.reserve(sigs_.size());
  for (const Sig& s : sigs_)
    row.push_back(s.is_gate ? (sim.gate_value(s.id) ? 1 : 0)
                            : sim.net_value(s.id));
  samples_.push_back(std::move(row));
}

std::string VcdWriter::render() const {
  std::ostringstream os;
  os << "$date hltg $end\n$version hltg vcd writer $end\n"
     << "$timescale 1 ns $end\n$scope module dlx $end\n";
  for (const Sig& s : sigs_)
    os << "$var wire " << s.width << " " << s.code << " " << s.name
       << (s.width > 1 ? " [" + std::to_string(s.width - 1) + ":0]" : "")
       << " $end\n";
  os << "$upscope $end\n$enddefinitions $end\n";
  auto emit = [&](std::ostringstream& out, const Sig& s, std::uint64_t v) {
    if (s.width == 1) {
      out << (v & 1) << s.code << "\n";
    } else {
      out << "b";
      for (unsigned b = s.width; b-- > 0;) out << ((v >> b) & 1);
      out << " " << s.code << "\n";
    }
  };
  for (std::size_t t = 0; t < samples_.size(); ++t) {
    os << "#" << t << "\n";
    for (std::size_t i = 0; i < sigs_.size(); ++i) {
      if (t > 0 && samples_[t][i] == samples_[t - 1][i]) continue;
      emit(os, sigs_[i], samples_[t][i]);
    }
  }
  os << "#" << samples_.size() << "\n";
  return os.str();
}

std::string dump_vcd(const DlxModel& m, const TestCase& tc, unsigned cycles,
                     const ErrorInjection& inj) {
  VcdWriter vcd(m);
  vcd.add_all_nets();
  for (GateId g : m.ctrl.tertiary_gates()) vcd.add_gate(g);
  ProcSim sim(m, tc, inj);
  for (unsigned c = 0; c < cycles; ++c) {
    sim.begin_cycle();
    vcd.sample(sim);
    sim.end_cycle();
  }
  return vcd.render();
}

}  // namespace hltg
