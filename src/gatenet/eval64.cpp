#include "gatenet/eval64.h"

namespace hltg {

namespace {
constexpr std::uint64_t kAllLanes = ~std::uint64_t{0};
}

std::uint64_t eval_gate64(const GateNet& gn, GateId g,
                          const std::vector<std::uint64_t>& vals) {
  const Gate& gate = gn.gate(g);
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kDff:
      return vals[g];
    case GateKind::kConst0:
      return 0;
    case GateKind::kConst1:
      return kAllLanes;
    case GateKind::kBuf:
      return vals[gate.fanin[0]];
    case GateKind::kNot:
      return ~vals[gate.fanin[0]];
    case GateKind::kAnd: {
      std::uint64_t v = kAllLanes;
      for (GateId in : gate.fanin) v &= vals[in];
      return v;
    }
    case GateKind::kOr: {
      std::uint64_t v = 0;
      for (GateId in : gate.fanin) v |= vals[in];
      return v;
    }
    case GateKind::kXor:
      return vals[gate.fanin[0]] ^ vals[gate.fanin[1]];
  }
  return 0;
}

void eval_cycle64(const GateNet& gn, std::vector<std::uint64_t>& vals) {
  for (GateId g : gn.topo_order()) {
    const Gate& gate = gn.gate(g);
    if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff) continue;
    vals[g] = eval_gate64(gn, g, vals);
  }
}

void clock_dffs64(const GateNet& gn, const std::vector<std::uint64_t>& vals,
                  std::vector<std::uint64_t>& next) {
  for (GateId g : gn.dffs()) next[g] = vals[gn.gate(g).fanin[0]];
}

void load_reset64(const GateNet& gn, std::vector<std::uint64_t>& vals) {
  vals.assign(gn.num_gates(), 0);
  for (GateId g : gn.dffs())
    if (gn.gate(g).reset_value) vals[g] = kAllLanes;
}

}  // namespace hltg
