#include "gatenet/levelize.h"

#include <algorithm>
#include <sstream>

namespace hltg {

std::vector<unsigned> levels(const GateNet& gn) {
  std::vector<unsigned> lvl(gn.num_gates(), 0);
  for (GateId g : gn.topo_order()) {
    const Gate& gate = gn.gate(g);
    if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff ||
        gate.kind == GateKind::kConst0 || gate.kind == GateKind::kConst1)
      continue;
    unsigned m = 0;
    for (GateId in : gate.fanin) m = std::max(m, lvl[in] + 1);
    lvl[g] = m;
  }
  return lvl;
}

GateNetStats analyze(const GateNet& gn) {
  GateNetStats s;
  s.num_gates = gn.num_gates();
  for (GateId g = 0; g < gn.num_gates(); ++g) {
    const Gate& gate = gn.gate(g);
    if (gate.kind == GateKind::kDff) ++s.num_dffs;
    if (gate.role == SigRole::kCPI) ++s.num_cpi;
    if (gate.role == SigRole::kSts) ++s.num_sts;
    if (gate.role == SigRole::kCtrl) ++s.num_ctrl;
    if (gate.tertiary) ++s.num_tertiary;
  }
  const auto lv = levels(gn);
  for (unsigned l : lv) s.comb_depth = std::max(s.comb_depth, l);
  s.dffs_by_stage = gn.dff_count_by_stage();
  s.tertiary_by_stage = gn.tertiary_count_by_stage();
  return s;
}

std::string GateNetStats::to_string() const {
  std::ostringstream os;
  os << "gates=" << num_gates << " dffs(n2*p)=" << num_dffs
     << " CPI(n1)=" << num_cpi << " STS=" << num_sts << " CTRL=" << num_ctrl
     << " tertiary(n3*p)=" << num_tertiary << " depth=" << comb_depth;
  return os.str();
}

}  // namespace hltg
