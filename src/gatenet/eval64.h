// Bit-parallel 2-valued evaluation of a controller gate network.
//
// Bit k of each value word is an independent "lane": one pass of
// eval_cycle64 simulates up to 64 machines whose gate-level logic is
// identical but whose inputs (CPI / STS / DFF state) differ per lane. The
// batch error simulator (sim/batch_sim) uses this to error-simulate a
// candidate test against up to 64 injected design errors at once - the
// controller cost of the campaign's dropping pass drops by ~64x compared
// to the scalar std::vector<bool> path in gatenet/eval3.
//
// Semantics per lane are exactly those of eval_cycle2 / clock_dffs2 /
// load_reset2; tests/test_eval64.cpp cross-checks lane-for-lane.
#pragma once

#include <cstdint>
#include <vector>

#include "gatenet/gatenet.h"

namespace hltg {

/// 64-lane 2-valued evaluation. `vals` must be sized num_gates() and
/// pre-loaded with the lane words of kVar gates and kDff gates (current
/// state); all other gates are overwritten in topological order.
void eval_cycle64(const GateNet& gn, std::vector<std::uint64_t>& vals);

/// Evaluate one gate from its fanin lane words; kVar/kDff return the word
/// already stored.
std::uint64_t eval_gate64(const GateNet& gn, GateId g,
                          const std::vector<std::uint64_t>& vals);

/// Next-cycle DFF lane words from the current `vals` (after eval_cycle64):
/// next[dff] = vals[dff.fanin[0]]. Other entries untouched.
void clock_dffs64(const GateNet& gn, const std::vector<std::uint64_t>& vals,
                  std::vector<std::uint64_t>& next);

/// Load the reset state of all DFFs into every lane of `vals`.
void load_reset64(const GateNet& gn, std::vector<std::uint64_t>& vals);

}  // namespace hltg
