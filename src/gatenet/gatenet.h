// Bit-level gate network: the controller IR (Sec. III).
//
// "Because it possesses unstructured binary signals, the controller is
// normally represented at the gate level." Every signal is one bit. Gates
// carry a pipeline-stage label and a signal-role label implementing the
// paper's classification:
//
//   kCPI  : control primary input (instruction bits entering decode)
//   kSts  : status bit arriving from the datapath
//   kCtrl : control bit leaving to the datapath
//   kCPO  : control primary output
//   kInternal : anything else
//
// Flip-flops (kDff) are the control pipe registers (CPRs): their outputs are
// the CSIs of the next cycle. A gate marked `tertiary` is a CTO: its value
// crosses into another pipe stage's cone (stall, squash, bypass selects);
// the pipeframe search (Sec. IV) cuts exactly these signals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.h"  // Stage
#include "util/logic3.h"

namespace hltg {

using GateId = std::uint32_t;
constexpr GateId kNoGate = static_cast<GateId>(-1);

enum class GateKind : std::uint8_t {
  kAnd,
  kOr,
  kNot,
  kXor,
  kBuf,
  kConst0,
  kConst1,
  kDff,  ///< control pipe register; fanin[0] = D; param = reset value
  kVar,  ///< externally driven source (CPI or STS bit)
};

enum class SigRole : std::uint8_t { kInternal = 0, kCPI, kSts, kCtrl, kCPO };

std::string_view to_string(GateKind k);
std::string_view to_string(SigRole r);

/// Flattened evaluation program for the bit-parallel kernels: the
/// combinational gates in topological order with their fanin lists packed
/// into one contiguous array, plus the DFF index/D-input/reset tables. The
/// wide evaluators (gatenet/evalw) walk this instead of chasing the
/// per-Gate std::vector fanins; GateNet caches one per network so campaign
/// rows share a single layout instead of re-deriving it per evaluation.
struct PackedLayout {
  struct Op {
    GateId gate;             ///< output slot
    std::uint32_t fanin_at;  ///< offset into `fanin`
    std::uint16_t nfanin;
    GateKind kind;
  };
  std::vector<Op> ops;        ///< combinational gates, topological order
  std::vector<GateId> fanin;  ///< concatenated fanin ids of `ops`
  std::vector<GateId> dffs;   ///< DFF gate ids (same order as GateNet::dffs)
  std::vector<GateId> dff_d;  ///< dff_d[i] = D input of dffs[i]
  std::vector<std::uint8_t> dff_reset;  ///< reset value per DFF
};

struct Gate {
  std::string name;
  GateKind kind = GateKind::kBuf;
  Stage stage = Stage::kGlobal;
  SigRole role = SigRole::kInternal;
  bool tertiary = false;     ///< CTO: consumed by another stage's logic
  bool reset_value = false;  ///< kDff only
  std::vector<GateId> fanin;
};

class GateNet {
 public:
  GateId add_gate(Gate g);

  Gate& gate(GateId id) { return gates_[id]; }
  const Gate& gate(GateId id) const { return gates_[id]; }
  std::size_t num_gates() const { return gates_.size(); }

  std::vector<GateId> gates_of_kind(GateKind k) const;
  std::vector<GateId> gates_with_role(SigRole r) const;
  std::vector<GateId> tertiary_gates() const;

  /// Cached DFF index list (computed lazily, invalidated on build). The
  /// per-cycle evaluators iterate this instead of scanning every gate.
  const std::vector<GateId>& dffs() const;

  /// Fanout lists (computed lazily).
  const std::vector<std::vector<GateId>>& fanouts() const;

  /// Topological order over combinational edges; kDff and kVar outputs are
  /// sources. Throws on a combinational cycle.
  const std::vector<GateId>& topo_order() const;

  /// Packed evaluation program (computed lazily from topo_order). The wide
  /// evaluators consume this; see PackedLayout.
  const PackedLayout& packed() const;

  GateId find(const std::string& name) const;

  /// Count of state bits (DFFs) and per-stage breakdown - the paper's n2.
  std::vector<int> dff_count_by_stage() const;
  /// Count of tertiary signals per stage - the paper's n3.
  std::vector<int> tertiary_count_by_stage() const;

  void invalidate() {
    topo_.clear();
    fanout_.clear();
    dffs_.clear();
    packed_.ops.clear();
    packed_.fanin.clear();
    packed_.dffs.clear();
    packed_.dff_d.clear();
    packed_.dff_reset.clear();
  }

  /// Force-compute the lazy caches (topo order, fanouts, DFF list, packed
  /// evaluation layout). Call once before sharing a const GateNet across
  /// threads: the lazy getters mutate `mutable` members and are not safe to
  /// race on first use.
  void warm_caches() const {
    if (!gates_.empty()) {
      topo_order();
      fanouts();
      dffs();
      packed();
    }
  }

 private:
  std::vector<Gate> gates_;
  mutable std::vector<GateId> topo_;
  mutable std::vector<std::vector<GateId>> fanout_;
  mutable std::vector<GateId> dffs_;
  mutable PackedLayout packed_;
};

}  // namespace hltg
