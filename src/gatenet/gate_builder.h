// Convenience EDSL for building controller gate networks.
//
// Wraps GateNet with variadic AND/OR/NOT/XOR helpers, bit-vector signals,
// and decode helpers (field == constant) used heavily by the DLX controller
// builder.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "gatenet/gatenet.h"

namespace hltg {

/// A multi-bit controller signal: LSB-first vector of gate ids.
using GateVec = std::vector<GateId>;

class GateBuilder {
 public:
  explicit GateBuilder(GateNet& gn) : gn_(gn) {}

  void set_stage(Stage s) { stage_ = s; }
  Stage stage() const { return stage_; }

  // --- sources ---------------------------------------------------------
  GateId var(const std::string& name, SigRole role);
  GateVec var_vec(const std::string& name, unsigned width, SigRole role);
  GateId const0();
  GateId const1();

  // --- combinational ---------------------------------------------------
  GateId and_(const std::string& name, std::vector<GateId> in);
  GateId or_(const std::string& name, std::vector<GateId> in);
  GateId not_(const std::string& name, GateId a);
  GateId xor_(const std::string& name, GateId a, GateId b);
  GateId buf(const std::string& name, GateId a);
  /// s ? b : a built from primitive gates.
  GateId mux(const std::string& name, GateId s, GateId a, GateId b);

  // --- sequential ------------------------------------------------------
  GateId dff(const std::string& name, GateId d, bool reset_value = false);
  /// Register a whole vector; returns Q vector.
  GateVec dff_vec(const std::string& name, const GateVec& d);
  /// DFF with synchronous enable and clear:
  ///   q' = clear ? 0 : (enable ? d : q).
  /// Pass kNoGate to omit a control. Built from primitive gates + dff.
  GateId dff_en_clr(const std::string& name, GateId d, GateId enable,
                    GateId clear, bool reset_value = false);
  GateVec dff_vec_en_clr(const std::string& name, const GateVec& d,
                         GateId enable, GateId clear);

  // --- decode helpers ---------------------------------------------------
  /// AND of literals: bit i of `bits` taken true/complemented so the term is
  /// 1 iff the vector equals `value`.
  GateId eq_const(const std::string& name, const GateVec& bits,
                  std::uint64_t value);
  /// OR of the given terms (0 terms -> const0; 1 term -> buf).
  GateId any(const std::string& name, std::vector<GateId> terms);

  // --- labeling ---------------------------------------------------------
  /// Mark a gate as a CTRL output to the datapath.
  GateId mark_ctrl(const std::string& name, GateId g);
  GateVec mark_ctrl_vec(const std::string& name, const GateVec& g);
  /// Mark a gate as tertiary (a CTO crossing into another stage).
  void mark_tertiary(GateId g);

  GateNet& net() { return gn_; }

 private:
  GateId emit(Gate g);
  GateNet& gn_;
  Stage stage_ = Stage::kGlobal;
  GateId const0_ = kNoGate;
  GateId const1_ = kNoGate;
};

}  // namespace hltg
