#include "gatenet/gate_builder.h"

#include <cassert>

#include "util/word.h"

namespace hltg {

GateId GateBuilder::emit(Gate g) {
  g.stage = g.stage == Stage::kGlobal && stage_ != Stage::kGlobal ? stage_
                                                                  : g.stage;
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::var(const std::string& name, SigRole role) {
  Gate g;
  g.name = name;
  g.kind = GateKind::kVar;
  g.role = role;
  g.stage = stage_;
  return gn_.add_gate(std::move(g));
}

GateVec GateBuilder::var_vec(const std::string& name, unsigned width,
                             SigRole role) {
  GateVec v(width);
  for (unsigned i = 0; i < width; ++i)
    v[i] = var(name + "[" + std::to_string(i) + "]", role);
  return v;
}

GateId GateBuilder::const0() {
  if (const0_ == kNoGate) {
    Gate g;
    g.name = "const0";
    g.kind = GateKind::kConst0;
    g.stage = Stage::kGlobal;
    const0_ = gn_.add_gate(std::move(g));
  }
  return const0_;
}

GateId GateBuilder::const1() {
  if (const1_ == kNoGate) {
    Gate g;
    g.name = "const1";
    g.kind = GateKind::kConst1;
    g.stage = Stage::kGlobal;
    const1_ = gn_.add_gate(std::move(g));
  }
  return const1_;
}

GateId GateBuilder::and_(const std::string& name, std::vector<GateId> in) {
  assert(!in.empty());
  if (in.size() == 1) return buf(name, in[0]);
  Gate g;
  g.name = name;
  g.kind = GateKind::kAnd;
  g.stage = stage_;
  g.fanin = std::move(in);
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::or_(const std::string& name, std::vector<GateId> in) {
  assert(!in.empty());
  if (in.size() == 1) return buf(name, in[0]);
  Gate g;
  g.name = name;
  g.kind = GateKind::kOr;
  g.stage = stage_;
  g.fanin = std::move(in);
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::not_(const std::string& name, GateId a) {
  Gate g;
  g.name = name;
  g.kind = GateKind::kNot;
  g.stage = stage_;
  g.fanin = {a};
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::xor_(const std::string& name, GateId a, GateId b) {
  Gate g;
  g.name = name;
  g.kind = GateKind::kXor;
  g.stage = stage_;
  g.fanin = {a, b};
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::buf(const std::string& name, GateId a) {
  Gate g;
  g.name = name;
  g.kind = GateKind::kBuf;
  g.stage = stage_;
  g.fanin = {a};
  return gn_.add_gate(std::move(g));
}

GateId GateBuilder::mux(const std::string& name, GateId s, GateId a,
                        GateId b) {
  const GateId ns = not_(name + ".ns", s);
  const GateId ta = and_(name + ".ta", {ns, a});
  const GateId tb = and_(name + ".tb", {s, b});
  return or_(name, {ta, tb});
}

GateId GateBuilder::dff(const std::string& name, GateId d, bool reset_value) {
  Gate g;
  g.name = name;
  g.kind = GateKind::kDff;
  g.stage = stage_;
  g.fanin = {d};
  g.reset_value = reset_value;
  return gn_.add_gate(std::move(g));
}

GateVec GateBuilder::dff_vec(const std::string& name, const GateVec& d) {
  GateVec q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    q[i] = dff(name + "[" + std::to_string(i) + "]", d[i]);
  return q;
}

GateId GateBuilder::dff_en_clr(const std::string& name, GateId d,
                               GateId enable, GateId clear, bool reset_value) {
  // Build q' = clear ? 0 : enable ? d : q with a feedback DFF. The DFF must
  // exist first so its output can appear in its own next-state logic; we
  // therefore create it with a placeholder fanin and patch D afterwards.
  Gate ff;
  ff.name = name;
  ff.kind = GateKind::kDff;
  ff.stage = stage_;
  ff.fanin = {const0()};  // patched below
  ff.reset_value = reset_value;
  const GateId q = gn_.add_gate(std::move(ff));

  GateId next = d;
  if (enable != kNoGate) next = mux(name + ".en", enable, q, d);
  if (clear != kNoGate) {
    const GateId nclr = not_(name + ".nclr", clear);
    next = and_(name + ".clr", {nclr, next});
  }
  gn_.gate(q).fanin[0] = next;
  gn_.invalidate();
  return q;
}

GateVec GateBuilder::dff_vec_en_clr(const std::string& name, const GateVec& d,
                                    GateId enable, GateId clear) {
  GateVec q(d.size());
  for (std::size_t i = 0; i < d.size(); ++i)
    q[i] = dff_en_clr(name + "[" + std::to_string(i) + "]", d[i], enable,
                      clear);
  return q;
}

GateId GateBuilder::eq_const(const std::string& name, const GateVec& bits,
                             std::uint64_t value) {
  std::vector<GateId> lits;
  lits.reserve(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (get_bit(value, static_cast<unsigned>(i)))
      lits.push_back(bits[i]);
    else
      lits.push_back(not_(name + ".n" + std::to_string(i), bits[i]));
  }
  return and_(name, std::move(lits));
}

GateId GateBuilder::any(const std::string& name, std::vector<GateId> terms) {
  if (terms.empty()) return buf(name, const0());
  return or_(name, std::move(terms));
}

GateId GateBuilder::mark_ctrl(const std::string& name, GateId g) {
  // Insert a named buffer so the CTRL signal has a stable identity even if
  // the driving logic is shared.
  const GateId b = buf(name, g);
  gn_.gate(b).role = SigRole::kCtrl;
  return b;
}

GateVec GateBuilder::mark_ctrl_vec(const std::string& name, const GateVec& g) {
  GateVec out(g.size());
  for (std::size_t i = 0; i < g.size(); ++i)
    out[i] = mark_ctrl(name + "[" + std::to_string(i) + "]", g[i]);
  return out;
}

void GateBuilder::mark_tertiary(GateId g) { gn_.gate(g).tertiary = true; }

}  // namespace hltg
