// AVX-512 backend for gatenet/evalw: 8 lane words (512 lanes) per vector
// op. Compiled with -mavx512f for this TU only; the dispatcher calls in
// here only after __builtin_cpu_supports("avx512f") confirms support.
#if defined(HLTG_EVALW_HAVE_AVX512)

#include <immintrin.h>

#include "gatenet/evalw_impl.h"

namespace hltg {
namespace detail {
namespace {

struct Avx512Block {
  static constexpr unsigned kWords = 8;
  using V = __m512i;
  static V load(const std::uint64_t* p) { return _mm512_loadu_si512(p); }
  static void store(std::uint64_t* p, V v) { _mm512_storeu_si512(p, v); }
  static V zero() { return _mm512_setzero_si512(); }
  static V ones() { return _mm512_set1_epi64(-1); }
  static V and_(V a, V b) { return _mm512_and_si512(a, b); }
  static V or_(V a, V b) { return _mm512_or_si512(a, b); }
  static V xor_(V a, V b) { return _mm512_xor_si512(a, b); }
  static V not_(V a) { return _mm512_xor_si512(a, ones()); }
};

}  // namespace

void eval_cyclew_avx512(const GateNet& gn, std::uint64_t* vals,
                        unsigned words) {
  eval_cyclew_t<Avx512Block>(gn, vals, words);
}

void eval_gatew_avx512(const GateNet& gn, GateId g, std::uint64_t* vals,
                       unsigned words) {
  eval_gatew_t<Avx512Block>(gn, g, vals, words);
}

void eval_cycle3w_avx512(const GateNet& gn, std::uint64_t* ones,
                         std::uint64_t* zeros, unsigned words) {
  eval_cycle3w_t<Avx512Block>(gn, ones, zeros, words);
}

void eval_gates3w_avx512(const GateNet& gn, const GateId* gates, std::size_t n,
                         std::uint64_t* ones, std::uint64_t* zeros,
                         unsigned words) {
  eval_gates3w_t<Avx512Block>(gn, gates, n, ones, zeros, words);
}

}  // namespace detail
}  // namespace hltg

#endif  // HLTG_EVALW_HAVE_AVX512
