#include "gatenet/gatenet.h"

#include <stdexcept>

namespace hltg {

std::string_view to_string(GateKind k) {
  switch (k) {
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kNot: return "NOT";
    case GateKind::kXor: return "XOR";
    case GateKind::kBuf: return "BUF";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kDff: return "DFF";
    case GateKind::kVar: return "VAR";
  }
  return "?";
}

std::string_view to_string(SigRole r) {
  switch (r) {
    case SigRole::kInternal: return "int";
    case SigRole::kCPI: return "CPI";
    case SigRole::kSts: return "STS";
    case SigRole::kCtrl: return "CTRL";
    case SigRole::kCPO: return "CPO";
  }
  return "?";
}

GateId GateNet::add_gate(Gate g) {
  gates_.push_back(std::move(g));
  invalidate();
  return static_cast<GateId>(gates_.size() - 1);
}

std::vector<GateId> GateNet::gates_of_kind(GateKind k) const {
  std::vector<GateId> out;
  for (GateId i = 0; i < gates_.size(); ++i)
    if (gates_[i].kind == k) out.push_back(i);
  return out;
}

std::vector<GateId> GateNet::gates_with_role(SigRole r) const {
  std::vector<GateId> out;
  for (GateId i = 0; i < gates_.size(); ++i)
    if (gates_[i].role == r) out.push_back(i);
  return out;
}

std::vector<GateId> GateNet::tertiary_gates() const {
  std::vector<GateId> out;
  for (GateId i = 0; i < gates_.size(); ++i)
    if (gates_[i].tertiary) out.push_back(i);
  return out;
}

const std::vector<GateId>& GateNet::dffs() const {
  // Lazy cache: an empty list is recomputed (cheap no-op for DFF-free nets).
  if (dffs_.empty()) dffs_ = gates_of_kind(GateKind::kDff);
  return dffs_;
}

const std::vector<std::vector<GateId>>& GateNet::fanouts() const {
  if (!fanout_.empty() || gates_.empty()) return fanout_;
  fanout_.assign(gates_.size(), {});
  for (GateId g = 0; g < gates_.size(); ++g)
    for (GateId in : gates_[g].fanin) fanout_[in].push_back(g);
  return fanout_;
}

const std::vector<GateId>& GateNet::topo_order() const {
  if (!topo_.empty() || gates_.empty()) return topo_;
  // Kahn's algorithm over combinational edges. Sources (DFF outputs, free
  // variables, constants) have no counted in-edges; a DFF's D input is
  // consumed at the clock edge, so DFFs impose no ordering constraint.
  auto is_source = [&](GateId g) {
    const GateKind k = gates_[g].kind;
    return k == GateKind::kDff || k == GateKind::kVar ||
           k == GateKind::kConst0 || k == GateKind::kConst1;
  };
  std::vector<unsigned> indeg(gates_.size(), 0);
  for (GateId g = 0; g < gates_.size(); ++g) {
    if (gates_[g].kind == GateKind::kDff) continue;
    for (GateId in : gates_[g].fanin)
      if (!is_source(in)) ++indeg[g];
  }
  std::vector<GateId> q;
  for (GateId g = 0; g < gates_.size(); ++g)
    if (indeg[g] == 0) q.push_back(g);
  for (std::size_t qi = 0; qi < q.size(); ++qi) {
    const GateId g = q[qi];
    topo_.push_back(g);
    if (is_source(g)) continue;  // out-edges of sources were never counted
    for (GateId s : fanouts()[g]) {
      if (gates_[s].kind == GateKind::kDff) continue;
      if (--indeg[s] == 0) q.push_back(s);
    }
  }
  if (topo_.size() != gates_.size())
    throw std::logic_error("combinational cycle in controller gate network");
  return topo_;
}

const PackedLayout& GateNet::packed() const {
  if (!packed_.ops.empty() || !packed_.dffs.empty() || gates_.empty())
    return packed_;
  for (GateId g : topo_order()) {
    const Gate& gate = gates_[g];
    if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff) continue;
    PackedLayout::Op op;
    op.gate = g;
    op.fanin_at = static_cast<std::uint32_t>(packed_.fanin.size());
    op.nfanin = static_cast<std::uint16_t>(gate.fanin.size());
    op.kind = gate.kind;
    packed_.ops.push_back(op);
    packed_.fanin.insert(packed_.fanin.end(), gate.fanin.begin(),
                         gate.fanin.end());
  }
  for (GateId g : dffs()) {
    packed_.dffs.push_back(g);
    packed_.dff_d.push_back(gates_[g].fanin[0]);
    packed_.dff_reset.push_back(gates_[g].reset_value ? 1 : 0);
  }
  return packed_;
}

GateId GateNet::find(const std::string& name) const {
  for (GateId i = 0; i < gates_.size(); ++i)
    if (gates_[i].name == name) return i;
  return kNoGate;
}

std::vector<int> GateNet::dff_count_by_stage() const {
  std::vector<int> out(kNumStages + 1, 0);
  for (const Gate& g : gates_)
    if (g.kind == GateKind::kDff) ++out[static_cast<int>(g.stage)];
  return out;
}

std::vector<int> GateNet::tertiary_count_by_stage() const {
  std::vector<int> out(kNumStages + 1, 0);
  for (const Gate& g : gates_)
    if (g.tertiary) ++out[static_cast<int>(g.stage)];
  return out;
}

}  // namespace hltg
