// Width-generic bit-parallel evaluation of a controller gate network.
//
// Generalizes gatenet/eval64 from one fixed 64-lane word to W = words * 64
// lanes per gate (64 / 128 / ... / 512), stored gate-major:
//
//   vals[g * words + w]   word w of gate g, bit k of word w = lane 64*w + k
//
// Three compile-time backends share one templated kernel
// (gatenet/evalw_impl.h): portable scalar uint64_t, AVX2 (4 words per
// vector op) and AVX-512 (8 words). The widest backend the binary carries
// AND the CPU reports via CPUID is dispatched at runtime; every backend
// computes bit-identical lane values, so lane width and backend choice can
// never change a simulation outcome - only how many gate visits it costs.
// Configure with -DHLTG_SIMD=auto|avx512|avx2|scalar (or the
// -DHLTG_FORCE_SCALAR=ON alias) and override the lane width at runtime with
// --lanes / HLTG_LANES.
//
// The 01X variants (`eval_cycle3w` etc.) carry three-valued lanes as a bit
// pair across two planes: ones-bit set = lane is 1, zeros-bit set = lane is
// 0, neither = X (both set cannot arise). AND/OR/NOT/XOR become 2-6 word
// ops per gate visit for W lanes, against one switch dispatch per lane in
// the scalar eval_cycle3 path.
//
// All kernels walk GateNet::packed() - the topo order and fanin lists
// flattened once per network (GateNet::warm_caches()) instead of per call.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "gatenet/gatenet.h"

namespace hltg {

/// Hard cap on lanes per batch; 8 words of 64.
inline constexpr unsigned kMaxLanes = 512;

enum class LaneBackend : std::uint8_t { kScalar, kAvx2, kAvx512 };

std::string_view to_string(LaneBackend b);

/// True when the backend is compiled in AND the CPU supports it at runtime
/// (kScalar: always).
bool backend_available(LaneBackend b);

/// Backend the auto dispatcher picks for `words` words per gate: the widest
/// available one whose vector covers at least one full block.
LaneBackend backend_for(unsigned words);

/// Resolve the lane width: explicit request > HLTG_LANES env > CPUID auto
/// (512 with AVX-512, 256 with AVX2, else 64). `requested == 0` means "no
/// request". The result is clamped to [1, kMaxLanes]; widths that are not
/// multiples of 64 are honored by masking, exactly like a partial batch.
unsigned resolve_lanes(unsigned requested = 0);

/// Words needed for `lanes` lanes.
inline unsigned lane_words(unsigned lanes) { return (lanes + 63) / 64; }

// --------------------------------------------------------------- 2-valued

/// Evaluate one cycle for all lanes. `vals` must hold num_gates() * words
/// entries, pre-loaded with kVar lane words and kDff state; every other
/// gate is overwritten in topological order.
void eval_cyclew(const GateNet& gn, std::uint64_t* vals, unsigned words);
void eval_cyclew(const GateNet& gn, std::uint64_t* vals, unsigned words,
                 LaneBackend b);

/// Evaluate a single gate's lane words in place (kVar/kDff untouched).
/// For schedules that interleave controller gates with datapath modules.
void eval_gatew(const GateNet& gn, GateId g, std::uint64_t* vals,
                unsigned words);
void eval_gatew(const GateNet& gn, GateId g, std::uint64_t* vals,
                unsigned words, LaneBackend b);

/// Clock edge in place: every DFF's lane words become its D input's.
/// `scratch` avoids an allocation per cycle (DFF-to-DFF chains make a
/// two-phase copy necessary).
void clock_dffsw(const GateNet& gn, std::uint64_t* vals, unsigned words,
                 std::vector<std::uint64_t>& scratch);

/// Size and load `vals` with the reset state in every lane.
void load_resetw(const GateNet& gn, std::vector<std::uint64_t>& vals,
                 unsigned words);

// -------------------------------------------------------- 01X (bit-pair)

/// Three-valued cycle evaluation over bit-pair planes (see header comment).
/// Both planes hold num_gates() * words entries; kVar/kDff planes are
/// inputs, everything else is overwritten.
void eval_cycle3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words);
void eval_cycle3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words, LaneBackend b);

/// Cone-masked 01X evaluation: evaluate ONLY the listed gates, in the given
/// order, over bit-pair planes. `gates` must be internally topologically
/// ordered (every listed gate's listed fanins precede it); kVar / kDff /
/// out-of-cone entries are left untouched, so callers can sweep just the
/// fanout cone of a set of assigned literals instead of the whole network.
/// The batched probe layer (src/solver/probe_batch) is the main consumer.
void eval_gates3w(const GateNet& gn, const GateId* gates, std::size_t n,
                  std::uint64_t* ones, std::uint64_t* zeros, unsigned words);
void eval_gates3w(const GateNet& gn, const GateId* gates, std::size_t n,
                  std::uint64_t* ones, std::uint64_t* zeros, unsigned words,
                  LaneBackend b);

/// Clock edge in place over both planes.
void clock_dffs3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words, std::vector<std::uint64_t>& scratch);

/// Reset state in every lane: DFFs known (per reset value), all other
/// gates X.
void load_reset3w(const GateNet& gn, std::vector<std::uint64_t>& ones,
                  std::vector<std::uint64_t>& zeros, unsigned words);

}  // namespace hltg
