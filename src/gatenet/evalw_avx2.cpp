// AVX2 backend for gatenet/evalw: 4 lane words (256 lanes) per vector op.
// Compiled with -mavx2 for this TU only; the dispatcher calls in here only
// after __builtin_cpu_supports("avx2") confirms the CPU can run it.
#if defined(HLTG_EVALW_HAVE_AVX2)

#include <immintrin.h>

#include "gatenet/evalw_impl.h"

namespace hltg {
namespace detail {
namespace {

struct Avx2Block {
  static constexpr unsigned kWords = 4;
  using V = __m256i;
  static V load(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(std::uint64_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V zero() { return _mm256_setzero_si256(); }
  static V ones() { return _mm256_set1_epi64x(-1); }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V or_(V a, V b) { return _mm256_or_si256(a, b); }
  static V xor_(V a, V b) { return _mm256_xor_si256(a, b); }
  static V not_(V a) { return _mm256_xor_si256(a, ones()); }
};

}  // namespace

void eval_cyclew_avx2(const GateNet& gn, std::uint64_t* vals, unsigned words) {
  eval_cyclew_t<Avx2Block>(gn, vals, words);
}

void eval_gatew_avx2(const GateNet& gn, GateId g, std::uint64_t* vals,
                     unsigned words) {
  eval_gatew_t<Avx2Block>(gn, g, vals, words);
}

void eval_cycle3w_avx2(const GateNet& gn, std::uint64_t* ones,
                       std::uint64_t* zeros, unsigned words) {
  eval_cycle3w_t<Avx2Block>(gn, ones, zeros, words);
}

void eval_gates3w_avx2(const GateNet& gn, const GateId* gates, std::size_t n,
                       std::uint64_t* ones, std::uint64_t* zeros,
                       unsigned words) {
  eval_gates3w_t<Avx2Block>(gn, gates, n, ones, zeros, words);
}

}  // namespace detail
}  // namespace hltg

#endif  // HLTG_EVALW_HAVE_AVX2
