// Shared templated kernels behind gatenet/evalw. Each backend TU
// (evalw.cpp scalar, evalw_avx2.cpp, evalw_avx512.cpp) instantiates the
// templates here with its block type; the per-source -mavx2 / -mavx512f
// flags therefore never leak into code the dispatcher might run on an
// older machine.
//
// A Block models `kWords` consecutive 64-bit lane words: load/store plus
// the four bitwise ops. The kernels process each gate's words in
// Block-sized chunks and finish any remainder with the scalar block, so
// every words count in [1, 8] works with every backend.
#pragma once

#include <cstdint>

#include "gatenet/evalw.h"
#include "gatenet/gatenet.h"

namespace hltg {
namespace detail {

struct ScalarBlock {
  static constexpr unsigned kWords = 1;
  using V = std::uint64_t;
  static V load(const std::uint64_t* p) { return *p; }
  static void store(std::uint64_t* p, V v) { *p = v; }
  static V zero() { return 0; }
  static V ones() { return ~std::uint64_t{0}; }
  static V and_(V a, V b) { return a & b; }
  static V or_(V a, V b) { return a | b; }
  static V xor_(V a, V b) { return a ^ b; }
  static V not_(V a) { return ~a; }
};

/// One gate, one block of lane words starting at word offset `w0`.
template <class B>
inline void eval_gate_block(GateKind kind, const GateId* fi, unsigned nf,
                            const std::uint64_t* vals, std::uint64_t* out,
                            std::size_t words, unsigned w0) {
  auto in = [&](unsigned j) {
    return B::load(vals + std::size_t{fi[j]} * words + w0);
  };
  switch (kind) {
    case GateKind::kConst0:
      B::store(out, B::zero());
      break;
    case GateKind::kConst1:
      B::store(out, B::ones());
      break;
    case GateKind::kBuf:
      B::store(out, in(0));
      break;
    case GateKind::kNot:
      B::store(out, B::not_(in(0)));
      break;
    case GateKind::kAnd: {
      typename B::V v = in(0);
      for (unsigned j = 1; j < nf; ++j) v = B::and_(v, in(j));
      B::store(out, v);
      break;
    }
    case GateKind::kOr: {
      typename B::V v = in(0);
      for (unsigned j = 1; j < nf; ++j) v = B::or_(v, in(j));
      B::store(out, v);
      break;
    }
    case GateKind::kXor:
      B::store(out, B::xor_(in(0), in(1)));
      break;
    case GateKind::kVar:
    case GateKind::kDff:
      break;  // sources: lane words already loaded
  }
}

/// One gate, one block of 01X bit-pair planes.
template <class B>
inline void eval_gate3_block(GateKind kind, const GateId* fi, unsigned nf,
                             const std::uint64_t* ones,
                             const std::uint64_t* zeros, std::uint64_t* o_out,
                             std::uint64_t* z_out, std::size_t words,
                             unsigned w0) {
  auto o_in = [&](unsigned j) {
    return B::load(ones + std::size_t{fi[j]} * words + w0);
  };
  auto z_in = [&](unsigned j) {
    return B::load(zeros + std::size_t{fi[j]} * words + w0);
  };
  switch (kind) {
    case GateKind::kConst0:
      B::store(o_out, B::zero());
      B::store(z_out, B::ones());
      break;
    case GateKind::kConst1:
      B::store(o_out, B::ones());
      B::store(z_out, B::zero());
      break;
    case GateKind::kBuf:
      B::store(o_out, o_in(0));
      B::store(z_out, z_in(0));
      break;
    case GateKind::kNot:  // swap the planes
      B::store(o_out, z_in(0));
      B::store(z_out, o_in(0));
      break;
    case GateKind::kAnd: {
      // 1 iff every input is 1; 0 iff any input is 0; else X.
      typename B::V o = o_in(0), z = z_in(0);
      for (unsigned j = 1; j < nf; ++j) {
        o = B::and_(o, o_in(j));
        z = B::or_(z, z_in(j));
      }
      B::store(o_out, o);
      B::store(z_out, z);
      break;
    }
    case GateKind::kOr: {
      typename B::V o = o_in(0), z = z_in(0);
      for (unsigned j = 1; j < nf; ++j) {
        o = B::or_(o, o_in(j));
        z = B::and_(z, z_in(j));
      }
      B::store(o_out, o);
      B::store(z_out, z);
      break;
    }
    case GateKind::kXor: {
      // Known only when both inputs are known.
      const typename B::V a1 = o_in(0), a0 = z_in(0);
      const typename B::V b1 = o_in(1), b0 = z_in(1);
      B::store(o_out, B::or_(B::and_(a1, b0), B::and_(a0, b1)));
      B::store(z_out, B::or_(B::and_(a1, b1), B::and_(a0, b0)));
      break;
    }
    case GateKind::kVar:
    case GateKind::kDff:
      break;
  }
}

template <class B>
void eval_cyclew_t(const GateNet& gn, std::uint64_t* vals,
                   const unsigned words) {
  const PackedLayout& pl = gn.packed();
  for (const PackedLayout::Op& op : pl.ops) {
    const GateId* fi = pl.fanin.data() + op.fanin_at;
    std::uint64_t* out = vals + std::size_t{op.gate} * words;
    unsigned w = 0;
    for (; w + B::kWords <= words; w += B::kWords)
      eval_gate_block<B>(op.kind, fi, op.nfanin, vals, out + w, words, w);
    for (; w < words; ++w)
      eval_gate_block<ScalarBlock>(op.kind, fi, op.nfanin, vals, out + w,
                                   words, w);
  }
}

template <class B>
void eval_gatew_t(const GateNet& gn, GateId g, std::uint64_t* vals,
                  const unsigned words) {
  const Gate& gate = gn.gate(g);
  if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff) return;
  const GateId* fi = gate.fanin.data();
  const unsigned nf = static_cast<unsigned>(gate.fanin.size());
  std::uint64_t* out = vals + std::size_t{g} * words;
  unsigned w = 0;
  for (; w + B::kWords <= words; w += B::kWords)
    eval_gate_block<B>(gate.kind, fi, nf, vals, out + w, words, w);
  for (; w < words; ++w)
    eval_gate_block<ScalarBlock>(gate.kind, fi, nf, vals, out + w, words, w);
}

template <class B>
void eval_cycle3w_t(const GateNet& gn, std::uint64_t* ones,
                    std::uint64_t* zeros, const unsigned words) {
  const PackedLayout& pl = gn.packed();
  for (const PackedLayout::Op& op : pl.ops) {
    const GateId* fi = pl.fanin.data() + op.fanin_at;
    const std::size_t at = std::size_t{op.gate} * words;
    unsigned w = 0;
    for (; w + B::kWords <= words; w += B::kWords)
      eval_gate3_block<B>(op.kind, fi, op.nfanin, ones, zeros, ones + at + w,
                          zeros + at + w, words, w);
    for (; w < words; ++w)
      eval_gate3_block<ScalarBlock>(op.kind, fi, op.nfanin, ones, zeros,
                                    ones + at + w, zeros + at + w, words, w);
  }
}

template <class B>
void eval_gates3w_t(const GateNet& gn, const GateId* gates, std::size_t n,
                    std::uint64_t* ones, std::uint64_t* zeros,
                    const unsigned words) {
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& gate = gn.gate(gates[i]);
    if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff) continue;
    const GateId* fi = gate.fanin.data();
    const unsigned nf = static_cast<unsigned>(gate.fanin.size());
    const std::size_t at = std::size_t{gates[i]} * words;
    unsigned w = 0;
    for (; w + B::kWords <= words; w += B::kWords)
      eval_gate3_block<B>(gate.kind, fi, nf, ones, zeros, ones + at + w,
                          zeros + at + w, words, w);
    for (; w < words; ++w)
      eval_gate3_block<ScalarBlock>(gate.kind, fi, nf, ones, zeros,
                                    ones + at + w, zeros + at + w, words, w);
  }
}

// Instantiated per backend TU; the dispatcher in evalw.cpp routes to these.
#if defined(HLTG_EVALW_HAVE_AVX2)
void eval_cyclew_avx2(const GateNet& gn, std::uint64_t* vals, unsigned words);
void eval_gatew_avx2(const GateNet& gn, GateId g, std::uint64_t* vals,
                     unsigned words);
void eval_cycle3w_avx2(const GateNet& gn, std::uint64_t* ones,
                       std::uint64_t* zeros, unsigned words);
void eval_gates3w_avx2(const GateNet& gn, const GateId* gates, std::size_t n,
                       std::uint64_t* ones, std::uint64_t* zeros,
                       unsigned words);
#endif
#if defined(HLTG_EVALW_HAVE_AVX512)
void eval_cyclew_avx512(const GateNet& gn, std::uint64_t* vals,
                        unsigned words);
void eval_gatew_avx512(const GateNet& gn, GateId g, std::uint64_t* vals,
                       unsigned words);
void eval_cycle3w_avx512(const GateNet& gn, std::uint64_t* ones,
                         std::uint64_t* zeros, unsigned words);
void eval_gates3w_avx512(const GateNet& gn, const GateId* gates, std::size_t n,
                         std::uint64_t* ones, std::uint64_t* zeros,
                         unsigned words);
#endif

}  // namespace detail
}  // namespace hltg
