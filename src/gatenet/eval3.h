// Two- and three-valued single-cycle evaluation of a controller gate network.
//
// The cycle-accurate simulator uses the 2-valued path; CTRLJUST's implication
// engine uses the 3-valued path over an unrolled window (src/core/unroll).
// The 3-valued entry points are thin shims over the lane engine's 01X
// bit-pair kernel (gatenet/evalw) run at width 1 - evalw is the single
// source of truth for 01X gate semantics.
#pragma once

#include <vector>

#include "gatenet/gatenet.h"
#include "util/logic3.h"

namespace hltg {

/// 2-valued evaluation. `vals` must be sized num_gates() and pre-loaded with
/// the values of kVar gates and kDff gates (current state); all other gates
/// are overwritten in topological order.
void eval_cycle2(const GateNet& gn, std::vector<bool>& vals);

/// Compute next-cycle DFF outputs from the current `vals` (after
/// eval_cycle2): next[dff] = vals[dff.fanin[0]]. Other entries untouched.
void clock_dffs2(const GateNet& gn, const std::vector<bool>& vals,
                 std::vector<bool>& next);

/// 3-valued evaluation; same contract with L3 values.
void eval_cycle3(const GateNet& gn, std::vector<L3>& vals);

/// Evaluate one gate from its fanin values (3-valued). kVar/kDff return the
/// value already stored.
L3 eval_gate3(const GateNet& gn, GateId g, const std::vector<L3>& vals);

/// Evaluate one gate from its fanin values (2-valued); kVar/kDff return the
/// stored value.
bool eval_gate2(const GateNet& gn, GateId g, const std::vector<bool>& vals);

/// Load the reset state of all DFFs into `vals`.
void load_reset2(const GateNet& gn, std::vector<bool>& vals);
void load_reset3(const GateNet& gn, std::vector<L3>& vals);

}  // namespace hltg
