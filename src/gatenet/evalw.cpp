#include "gatenet/evalw.h"

#include <algorithm>
#include <cstdlib>

#include "gatenet/evalw_impl.h"

namespace hltg {
namespace {

// __builtin_cpu_supports requires a literal argument, hence one helper per
// feature rather than a parameterized one.
bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

}  // namespace

std::string_view to_string(LaneBackend b) {
  switch (b) {
    case LaneBackend::kScalar: return "scalar";
    case LaneBackend::kAvx2: return "avx2";
    case LaneBackend::kAvx512: return "avx512";
  }
  return "?";
}

bool backend_available(LaneBackend b) {
  switch (b) {
    case LaneBackend::kScalar:
      return true;
    case LaneBackend::kAvx2:
#if defined(HLTG_EVALW_HAVE_AVX2)
      return cpu_has_avx2();
#else
      return false;
#endif
    case LaneBackend::kAvx512:
#if defined(HLTG_EVALW_HAVE_AVX512)
      return cpu_has_avx512f();
#else
      return false;
#endif
  }
  return false;
}

LaneBackend backend_for(unsigned words) {
  if (words >= 8 && backend_available(LaneBackend::kAvx512))
    return LaneBackend::kAvx512;
  if (words >= 4 && backend_available(LaneBackend::kAvx2))
    return LaneBackend::kAvx2;
  return LaneBackend::kScalar;
}

unsigned resolve_lanes(unsigned requested) {
  unsigned lanes = requested;
  if (lanes == 0) {
    if (const char* env = std::getenv("HLTG_LANES")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) lanes = static_cast<unsigned>(v);
    }
  }
  if (lanes == 0) {
    if (backend_available(LaneBackend::kAvx512))
      lanes = 512;
    else if (backend_available(LaneBackend::kAvx2))
      lanes = 256;
    else
      lanes = 64;
  }
  return std::clamp(lanes, 1u, kMaxLanes);
}

void eval_cyclew(const GateNet& gn, std::uint64_t* vals, unsigned words,
                 LaneBackend b) {
  switch (b) {
#if defined(HLTG_EVALW_HAVE_AVX512)
    case LaneBackend::kAvx512:
      detail::eval_cyclew_avx512(gn, vals, words);
      return;
#endif
#if defined(HLTG_EVALW_HAVE_AVX2)
    case LaneBackend::kAvx2:
      detail::eval_cyclew_avx2(gn, vals, words);
      return;
#endif
    default:
      detail::eval_cyclew_t<detail::ScalarBlock>(gn, vals, words);
      return;
  }
}

void eval_cyclew(const GateNet& gn, std::uint64_t* vals, unsigned words) {
  eval_cyclew(gn, vals, words, backend_for(words));
}

void eval_gatew(const GateNet& gn, GateId g, std::uint64_t* vals,
                unsigned words, LaneBackend b) {
  switch (b) {
#if defined(HLTG_EVALW_HAVE_AVX512)
    case LaneBackend::kAvx512:
      detail::eval_gatew_avx512(gn, g, vals, words);
      return;
#endif
#if defined(HLTG_EVALW_HAVE_AVX2)
    case LaneBackend::kAvx2:
      detail::eval_gatew_avx2(gn, g, vals, words);
      return;
#endif
    default:
      detail::eval_gatew_t<detail::ScalarBlock>(gn, g, vals, words);
      return;
  }
}

void eval_gatew(const GateNet& gn, GateId g, std::uint64_t* vals,
                unsigned words) {
  eval_gatew(gn, g, vals, words, backend_for(words));
}

void clock_dffsw(const GateNet& gn, std::uint64_t* vals, unsigned words,
                 std::vector<std::uint64_t>& scratch) {
  const PackedLayout& pl = gn.packed();
  // Two-phase: latch every D first so DFF-to-DFF chains shift by exactly
  // one stage per edge regardless of table order.
  scratch.resize(pl.dffs.size() * words);
  for (std::size_t i = 0; i < pl.dffs.size(); ++i) {
    const std::uint64_t* d = vals + std::size_t{pl.dff_d[i]} * words;
    std::copy(d, d + words, scratch.data() + i * words);
  }
  for (std::size_t i = 0; i < pl.dffs.size(); ++i) {
    const std::uint64_t* s = scratch.data() + i * words;
    std::copy(s, s + words, vals + std::size_t{pl.dffs[i]} * words);
  }
}

void load_resetw(const GateNet& gn, std::vector<std::uint64_t>& vals,
                 unsigned words) {
  const PackedLayout& pl = gn.packed();
  vals.assign(gn.num_gates() * words, 0);
  for (std::size_t i = 0; i < pl.dffs.size(); ++i)
    if (pl.dff_reset[i])
      std::fill_n(vals.data() + std::size_t{pl.dffs[i]} * words, words,
                  ~std::uint64_t{0});
}

void eval_cycle3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words, LaneBackend b) {
  switch (b) {
#if defined(HLTG_EVALW_HAVE_AVX512)
    case LaneBackend::kAvx512:
      detail::eval_cycle3w_avx512(gn, ones, zeros, words);
      return;
#endif
#if defined(HLTG_EVALW_HAVE_AVX2)
    case LaneBackend::kAvx2:
      detail::eval_cycle3w_avx2(gn, ones, zeros, words);
      return;
#endif
    default:
      detail::eval_cycle3w_t<detail::ScalarBlock>(gn, ones, zeros, words);
      return;
  }
}

void eval_cycle3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words) {
  eval_cycle3w(gn, ones, zeros, words, backend_for(words));
}

void eval_gates3w(const GateNet& gn, const GateId* gates, std::size_t n,
                  std::uint64_t* ones, std::uint64_t* zeros, unsigned words,
                  LaneBackend b) {
  switch (b) {
#if defined(HLTG_EVALW_HAVE_AVX512)
    case LaneBackend::kAvx512:
      detail::eval_gates3w_avx512(gn, gates, n, ones, zeros, words);
      return;
#endif
#if defined(HLTG_EVALW_HAVE_AVX2)
    case LaneBackend::kAvx2:
      detail::eval_gates3w_avx2(gn, gates, n, ones, zeros, words);
      return;
#endif
    default:
      detail::eval_gates3w_t<detail::ScalarBlock>(gn, gates, n, ones, zeros,
                                                  words);
      return;
  }
}

void eval_gates3w(const GateNet& gn, const GateId* gates, std::size_t n,
                  std::uint64_t* ones, std::uint64_t* zeros, unsigned words) {
  eval_gates3w(gn, gates, n, ones, zeros, words, backend_for(words));
}

void clock_dffs3w(const GateNet& gn, std::uint64_t* ones, std::uint64_t* zeros,
                  unsigned words, std::vector<std::uint64_t>& scratch) {
  clock_dffsw(gn, ones, words, scratch);
  clock_dffsw(gn, zeros, words, scratch);
}

void load_reset3w(const GateNet& gn, std::vector<std::uint64_t>& ones,
                  std::vector<std::uint64_t>& zeros, unsigned words) {
  const PackedLayout& pl = gn.packed();
  // All-X everywhere, then make the DFF lanes known per reset value.
  ones.assign(gn.num_gates() * words, 0);
  zeros.assign(gn.num_gates() * words, 0);
  for (std::size_t i = 0; i < pl.dffs.size(); ++i) {
    std::uint64_t* plane =
        (pl.dff_reset[i] ? ones : zeros).data() + std::size_t{pl.dffs[i]} * words;
    std::fill_n(plane, words, ~std::uint64_t{0});
  }
}

}  // namespace hltg
