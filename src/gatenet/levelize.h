// Structural analysis of a gate network: logic depth, per-stage statistics,
// and the paper's n1/n2/n3 decision-variable accounting (Sec. IV).
#pragma once

#include <string>
#include <vector>

#include "gatenet/gatenet.h"

namespace hltg {

struct GateNetStats {
  std::size_t num_gates = 0;
  std::size_t num_dffs = 0;        ///< controller state bits (sum of n2)
  std::size_t num_cpi = 0;         ///< n1
  std::size_t num_sts = 0;
  std::size_t num_ctrl = 0;
  std::size_t num_tertiary = 0;    ///< sum of n3
  unsigned comb_depth = 0;         ///< max combinational level
  std::vector<int> dffs_by_stage;
  std::vector<int> tertiary_by_stage;

  /// Decision variables needing justification per timeframe organization
  /// (p * n2) vs pipeframe organization (p * n3) - the Sec. IV comparison.
  std::size_t timeframe_justify_vars() const { return num_dffs; }
  std::size_t pipeframe_justify_vars() const { return num_tertiary; }

  std::string to_string() const;
};

GateNetStats analyze(const GateNet& gn);

/// Combinational level per gate (sources at level 0).
std::vector<unsigned> levels(const GateNet& gn);

}  // namespace hltg
