#include "gatenet/eval3.h"

namespace hltg {

void eval_cycle2(const GateNet& gn, std::vector<bool>& vals) {
  for (GateId g : gn.topo_order()) {
    const Gate& gate = gn.gate(g);
    switch (gate.kind) {
      case GateKind::kVar:
      case GateKind::kDff:
        break;  // externally supplied / state
      case GateKind::kConst0:
        vals[g] = false;
        break;
      case GateKind::kConst1:
        vals[g] = true;
        break;
      case GateKind::kBuf:
        vals[g] = vals[gate.fanin[0]];
        break;
      case GateKind::kNot:
        vals[g] = !vals[gate.fanin[0]];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (GateId in : gate.fanin) v = v && vals[in];
        vals[g] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (GateId in : gate.fanin) v = v || vals[in];
        vals[g] = v;
        break;
      }
      case GateKind::kXor:
        vals[g] = vals[gate.fanin[0]] != vals[gate.fanin[1]];
        break;
    }
  }
}

void clock_dffs2(const GateNet& gn, const std::vector<bool>& vals,
                 std::vector<bool>& next) {
  for (GateId g : gn.dffs()) next[g] = vals[gn.gate(g).fanin[0]];
}

L3 eval_gate3(const GateNet& gn, GateId g, const std::vector<L3>& vals) {
  const Gate& gate = gn.gate(g);
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kDff:
      return vals[g];
    case GateKind::kConst0:
      return L3::F;
    case GateKind::kConst1:
      return L3::T;
    case GateKind::kBuf:
      return vals[gate.fanin[0]];
    case GateKind::kNot:
      return l3_not(vals[gate.fanin[0]]);
    case GateKind::kAnd: {
      L3 v = L3::T;
      for (GateId in : gate.fanin) v = l3_and(v, vals[in]);
      return v;
    }
    case GateKind::kOr: {
      L3 v = L3::F;
      for (GateId in : gate.fanin) v = l3_or(v, vals[in]);
      return v;
    }
    case GateKind::kXor:
      return l3_xor(vals[gate.fanin[0]], vals[gate.fanin[1]]);
  }
  return L3::X;
}

bool eval_gate2(const GateNet& gn, GateId g, const std::vector<bool>& vals) {
  const Gate& gate = gn.gate(g);
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kDff:
      return vals[g];
    case GateKind::kConst0:
      return false;
    case GateKind::kConst1:
      return true;
    case GateKind::kBuf:
      return vals[gate.fanin[0]];
    case GateKind::kNot:
      return !vals[gate.fanin[0]];
    case GateKind::kAnd: {
      for (GateId in : gate.fanin)
        if (!vals[in]) return false;
      return true;
    }
    case GateKind::kOr: {
      for (GateId in : gate.fanin)
        if (vals[in]) return true;
      return false;
    }
    case GateKind::kXor:
      return vals[gate.fanin[0]] != vals[gate.fanin[1]];
  }
  return false;
}

void eval_cycle3(const GateNet& gn, std::vector<L3>& vals) {
  for (GateId g : gn.topo_order()) {
    const Gate& gate = gn.gate(g);
    if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff) continue;
    vals[g] = eval_gate3(gn, g, vals);
  }
}

void load_reset2(const GateNet& gn, std::vector<bool>& vals) {
  vals.assign(gn.num_gates(), false);
  for (GateId g : gn.dffs()) vals[g] = gn.gate(g).reset_value;
}

void load_reset3(const GateNet& gn, std::vector<L3>& vals) {
  vals.assign(gn.num_gates(), L3::X);
  for (GateId g : gn.dffs()) vals[g] = l3_from_bool(gn.gate(g).reset_value);
}

}  // namespace hltg
