#include "gatenet/eval3.h"

#include "gatenet/evalw.h"

namespace hltg {

void eval_cycle2(const GateNet& gn, std::vector<bool>& vals) {
  for (GateId g : gn.topo_order()) {
    const Gate& gate = gn.gate(g);
    switch (gate.kind) {
      case GateKind::kVar:
      case GateKind::kDff:
        break;  // externally supplied / state
      case GateKind::kConst0:
        vals[g] = false;
        break;
      case GateKind::kConst1:
        vals[g] = true;
        break;
      case GateKind::kBuf:
        vals[g] = vals[gate.fanin[0]];
        break;
      case GateKind::kNot:
        vals[g] = !vals[gate.fanin[0]];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (GateId in : gate.fanin) v = v && vals[in];
        vals[g] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (GateId in : gate.fanin) v = v || vals[in];
        vals[g] = v;
        break;
      }
      case GateKind::kXor:
        vals[g] = vals[gate.fanin[0]] != vals[gate.fanin[1]];
        break;
    }
  }
}

void clock_dffs2(const GateNet& gn, const std::vector<bool>& vals,
                 std::vector<bool>& next) {
  for (GateId g : gn.dffs()) next[g] = vals[gn.gate(g).fanin[0]];
}

// The 3-valued evaluators are thin shims over the lane engine's 01X kernel
// (gatenet/evalw): values are packed into one-word bit-pair planes, the
// shared kernel runs at width 1, and the planes are unpacked back to L3.
// There is exactly one implementation of 01X gate semantics in the tree -
// the lane engine's - so the scalar and SIMD paths can never drift apart.
namespace {

/// Per-thread plane scratch so the hot per-cycle imply path of
/// core/unroll.cpp stays allocation-free. Campaign workers each get their
/// own copy; nets of different sizes just grow the buffers.
struct PlaneScratch {
  std::vector<std::uint64_t> ones, zeros;
  void fit(std::size_t n) {
    if (ones.size() < n) {
      ones.resize(n);
      zeros.resize(n);
    }
  }
};

PlaneScratch& scratch() {
  thread_local PlaneScratch s;
  return s;
}

inline void pack1(L3 v, std::uint64_t* one, std::uint64_t* zero) {
  *one = v == L3::T ? 1u : 0u;
  *zero = v == L3::F ? 1u : 0u;
}

inline L3 unpack1(std::uint64_t one, std::uint64_t zero) {
  if (one & 1) return L3::T;
  if (zero & 1) return L3::F;
  return L3::X;
}

}  // namespace

void eval_cycle3(const GateNet& gn, std::vector<L3>& vals) {
  const std::size_t n = gn.num_gates();
  PlaneScratch& s = scratch();
  s.fit(n);
  for (std::size_t g = 0; g < n; ++g)
    pack1(vals[g], &s.ones[g], &s.zeros[g]);
  eval_cycle3w(gn, s.ones.data(), s.zeros.data(), 1, LaneBackend::kScalar);
  for (std::size_t g = 0; g < n; ++g) vals[g] = unpack1(s.ones[g], s.zeros[g]);
}

L3 eval_gate3(const GateNet& gn, GateId g, const std::vector<L3>& vals) {
  const Gate& gate = gn.gate(g);
  if (gate.kind == GateKind::kVar || gate.kind == GateKind::kDff)
    return vals[g];
  PlaneScratch& s = scratch();
  s.fit(gn.num_gates());
  for (GateId in : gate.fanin) pack1(vals[in], &s.ones[in], &s.zeros[in]);
  eval_gates3w(gn, &g, 1, s.ones.data(), s.zeros.data(), 1,
               LaneBackend::kScalar);
  return unpack1(s.ones[g], s.zeros[g]);
}

bool eval_gate2(const GateNet& gn, GateId g, const std::vector<bool>& vals) {
  const Gate& gate = gn.gate(g);
  switch (gate.kind) {
    case GateKind::kVar:
    case GateKind::kDff:
      return vals[g];
    case GateKind::kConst0:
      return false;
    case GateKind::kConst1:
      return true;
    case GateKind::kBuf:
      return vals[gate.fanin[0]];
    case GateKind::kNot:
      return !vals[gate.fanin[0]];
    case GateKind::kAnd: {
      for (GateId in : gate.fanin)
        if (!vals[in]) return false;
      return true;
    }
    case GateKind::kOr: {
      for (GateId in : gate.fanin)
        if (vals[in]) return true;
      return false;
    }
    case GateKind::kXor:
      return vals[gate.fanin[0]] != vals[gate.fanin[1]];
  }
  return false;
}

void load_reset2(const GateNet& gn, std::vector<bool>& vals) {
  vals.assign(gn.num_gates(), false);
  for (GateId g : gn.dffs()) vals[g] = gn.gate(g).reset_value;
}

void load_reset3(const GateNet& gn, std::vector<L3>& vals) {
  vals.assign(gn.num_gates(), L3::X);
  for (GateId g : gn.dffs()) vals[g] = l3_from_bool(gn.gate(g).reset_value);
}

}  // namespace hltg
