# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_costate[1]_include.cmake")
include("/root/repo/build/tests/test_scoap[1]_include.cmake")
include("/root/repo/build/tests/test_gatenet[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_spec_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dlx_model[1]_include.cmake")
include("/root/repo/build/tests/test_proc_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cosim_random[1]_include.cmake")
include("/root/repo/build/tests/test_errors[1]_include.cmake")
include("/root/repo/build/tests/test_ctrljust[1]_include.cmake")
include("/root/repo/build/tests/test_dptrace[1]_include.cmake")
include("/root/repo/build/tests/test_dprelax[1]_include.cmake")
include("/root/repo/build/tests/test_tg[1]_include.cmake")
include("/root/repo/build/tests/test_timeframe[1]_include.cmake")
include("/root/repo/build/tests/test_redundancy[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_bse[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_asm_labels[1]_include.cmake")
include("/root/repo/build/tests/test_nobypass[1]_include.cmake")
include("/root/repo/build/tests/test_sim_misc[1]_include.cmake")
include("/root/repo/build/tests/test_io_report[1]_include.cmake")
include("/root/repo/build/tests/test_debug_tools[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
