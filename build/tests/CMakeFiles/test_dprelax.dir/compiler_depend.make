# Empty compiler generated dependencies file for test_dprelax.
# This may be replaced when dependencies are built.
