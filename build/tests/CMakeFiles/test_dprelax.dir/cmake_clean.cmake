file(REMOVE_RECURSE
  "CMakeFiles/test_dprelax.dir/test_dprelax.cpp.o"
  "CMakeFiles/test_dprelax.dir/test_dprelax.cpp.o.d"
  "test_dprelax"
  "test_dprelax.pdb"
  "test_dprelax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dprelax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
