# Empty dependencies file for test_bse.
# This may be replaced when dependencies are built.
