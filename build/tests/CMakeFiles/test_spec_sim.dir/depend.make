# Empty dependencies file for test_spec_sim.
# This may be replaced when dependencies are built.
