file(REMOVE_RECURSE
  "CMakeFiles/test_spec_sim.dir/test_spec_sim.cpp.o"
  "CMakeFiles/test_spec_sim.dir/test_spec_sim.cpp.o.d"
  "test_spec_sim"
  "test_spec_sim.pdb"
  "test_spec_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
