# Empty compiler generated dependencies file for test_ctrljust.
# This may be replaced when dependencies are built.
