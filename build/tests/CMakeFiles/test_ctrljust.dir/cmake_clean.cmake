file(REMOVE_RECURSE
  "CMakeFiles/test_ctrljust.dir/test_ctrljust.cpp.o"
  "CMakeFiles/test_ctrljust.dir/test_ctrljust.cpp.o.d"
  "test_ctrljust"
  "test_ctrljust.pdb"
  "test_ctrljust[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ctrljust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
