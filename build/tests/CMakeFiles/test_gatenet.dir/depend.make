# Empty dependencies file for test_gatenet.
# This may be replaced when dependencies are built.
