file(REMOVE_RECURSE
  "CMakeFiles/test_gatenet.dir/test_gatenet.cpp.o"
  "CMakeFiles/test_gatenet.dir/test_gatenet.cpp.o.d"
  "test_gatenet"
  "test_gatenet.pdb"
  "test_gatenet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gatenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
