# Empty compiler generated dependencies file for test_nobypass.
# This may be replaced when dependencies are built.
