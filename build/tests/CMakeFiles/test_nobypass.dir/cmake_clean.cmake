file(REMOVE_RECURSE
  "CMakeFiles/test_nobypass.dir/test_nobypass.cpp.o"
  "CMakeFiles/test_nobypass.dir/test_nobypass.cpp.o.d"
  "test_nobypass"
  "test_nobypass.pdb"
  "test_nobypass[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nobypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
