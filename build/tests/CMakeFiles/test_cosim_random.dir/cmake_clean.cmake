file(REMOVE_RECURSE
  "CMakeFiles/test_cosim_random.dir/test_cosim_random.cpp.o"
  "CMakeFiles/test_cosim_random.dir/test_cosim_random.cpp.o.d"
  "test_cosim_random"
  "test_cosim_random.pdb"
  "test_cosim_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosim_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
