# Empty dependencies file for test_cosim_random.
# This may be replaced when dependencies are built.
