file(REMOVE_RECURSE
  "CMakeFiles/test_scoap.dir/test_scoap.cpp.o"
  "CMakeFiles/test_scoap.dir/test_scoap.cpp.o.d"
  "test_scoap"
  "test_scoap.pdb"
  "test_scoap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scoap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
