# Empty dependencies file for test_debug_tools.
# This may be replaced when dependencies are built.
