file(REMOVE_RECURSE
  "CMakeFiles/test_debug_tools.dir/test_debug_tools.cpp.o"
  "CMakeFiles/test_debug_tools.dir/test_debug_tools.cpp.o.d"
  "test_debug_tools"
  "test_debug_tools.pdb"
  "test_debug_tools[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_debug_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
