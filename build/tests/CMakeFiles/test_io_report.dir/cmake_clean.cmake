file(REMOVE_RECURSE
  "CMakeFiles/test_io_report.dir/test_io_report.cpp.o"
  "CMakeFiles/test_io_report.dir/test_io_report.cpp.o.d"
  "test_io_report"
  "test_io_report.pdb"
  "test_io_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
