# Empty dependencies file for test_dlx_model.
# This may be replaced when dependencies are built.
