file(REMOVE_RECURSE
  "CMakeFiles/test_dlx_model.dir/test_dlx_model.cpp.o"
  "CMakeFiles/test_dlx_model.dir/test_dlx_model.cpp.o.d"
  "test_dlx_model"
  "test_dlx_model.pdb"
  "test_dlx_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dlx_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
