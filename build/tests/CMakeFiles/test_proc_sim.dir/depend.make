# Empty dependencies file for test_proc_sim.
# This may be replaced when dependencies are built.
