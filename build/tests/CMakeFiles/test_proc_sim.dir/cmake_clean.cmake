file(REMOVE_RECURSE
  "CMakeFiles/test_proc_sim.dir/test_proc_sim.cpp.o"
  "CMakeFiles/test_proc_sim.dir/test_proc_sim.cpp.o.d"
  "test_proc_sim"
  "test_proc_sim.pdb"
  "test_proc_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_proc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
