file(REMOVE_RECURSE
  "CMakeFiles/test_asm_labels.dir/test_asm_labels.cpp.o"
  "CMakeFiles/test_asm_labels.dir/test_asm_labels.cpp.o.d"
  "test_asm_labels"
  "test_asm_labels.pdb"
  "test_asm_labels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asm_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
