# Empty compiler generated dependencies file for test_dptrace.
# This may be replaced when dependencies are built.
