file(REMOVE_RECURSE
  "CMakeFiles/test_dptrace.dir/test_dptrace.cpp.o"
  "CMakeFiles/test_dptrace.dir/test_dptrace.cpp.o.d"
  "test_dptrace"
  "test_dptrace.pdb"
  "test_dptrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dptrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
