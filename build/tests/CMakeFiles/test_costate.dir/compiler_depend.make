# Empty compiler generated dependencies file for test_costate.
# This may be replaced when dependencies are built.
