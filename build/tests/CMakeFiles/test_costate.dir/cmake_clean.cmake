file(REMOVE_RECURSE
  "CMakeFiles/test_costate.dir/test_costate.cpp.o"
  "CMakeFiles/test_costate.dir/test_costate.cpp.o.d"
  "test_costate"
  "test_costate.pdb"
  "test_costate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_costate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
