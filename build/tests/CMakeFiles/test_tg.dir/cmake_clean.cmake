file(REMOVE_RECURSE
  "CMakeFiles/test_tg.dir/test_tg.cpp.o"
  "CMakeFiles/test_tg.dir/test_tg.cpp.o.d"
  "test_tg"
  "test_tg.pdb"
  "test_tg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
