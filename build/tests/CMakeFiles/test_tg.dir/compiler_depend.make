# Empty compiler generated dependencies file for test_tg.
# This may be replaced when dependencies are built.
