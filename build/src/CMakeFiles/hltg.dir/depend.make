# Empty dependencies file for hltg.
# This may be replaced when dependencies are built.
