
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/random_tg.cpp" "src/CMakeFiles/hltg.dir/baseline/random_tg.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/baseline/random_tg.cpp.o.d"
  "/root/repo/src/baseline/timeframe.cpp" "src/CMakeFiles/hltg.dir/baseline/timeframe.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/baseline/timeframe.cpp.o.d"
  "/root/repo/src/core/archstate.cpp" "src/CMakeFiles/hltg.dir/core/archstate.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/archstate.cpp.o.d"
  "/root/repo/src/core/ctrljust.cpp" "src/CMakeFiles/hltg.dir/core/ctrljust.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/ctrljust.cpp.o.d"
  "/root/repo/src/core/dprelax.cpp" "src/CMakeFiles/hltg.dir/core/dprelax.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/dprelax.cpp.o.d"
  "/root/repo/src/core/dptrace.cpp" "src/CMakeFiles/hltg.dir/core/dptrace.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/dptrace.cpp.o.d"
  "/root/repo/src/core/emit.cpp" "src/CMakeFiles/hltg.dir/core/emit.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/emit.cpp.o.d"
  "/root/repo/src/core/tg.cpp" "src/CMakeFiles/hltg.dir/core/tg.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/tg.cpp.o.d"
  "/root/repo/src/core/unroll.cpp" "src/CMakeFiles/hltg.dir/core/unroll.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/core/unroll.cpp.o.d"
  "/root/repo/src/dlx/controller.cpp" "src/CMakeFiles/hltg.dir/dlx/controller.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/dlx/controller.cpp.o.d"
  "/root/repo/src/dlx/datapath.cpp" "src/CMakeFiles/hltg.dir/dlx/datapath.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/dlx/datapath.cpp.o.d"
  "/root/repo/src/dlx/dlx.cpp" "src/CMakeFiles/hltg.dir/dlx/dlx.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/dlx/dlx.cpp.o.d"
  "/root/repo/src/dlx/export_verilog.cpp" "src/CMakeFiles/hltg.dir/dlx/export_verilog.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/dlx/export_verilog.cpp.o.d"
  "/root/repo/src/dlx/signal_names.cpp" "src/CMakeFiles/hltg.dir/dlx/signal_names.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/dlx/signal_names.cpp.o.d"
  "/root/repo/src/errors/boe.cpp" "src/CMakeFiles/hltg.dir/errors/boe.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/boe.cpp.o.d"
  "/root/repo/src/errors/bse.cpp" "src/CMakeFiles/hltg.dir/errors/bse.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/bse.cpp.o.d"
  "/root/repo/src/errors/bus_ssl.cpp" "src/CMakeFiles/hltg.dir/errors/bus_ssl.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/bus_ssl.cpp.o.d"
  "/root/repo/src/errors/campaign.cpp" "src/CMakeFiles/hltg.dir/errors/campaign.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/campaign.cpp.o.d"
  "/root/repo/src/errors/coverage.cpp" "src/CMakeFiles/hltg.dir/errors/coverage.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/coverage.cpp.o.d"
  "/root/repo/src/errors/inject.cpp" "src/CMakeFiles/hltg.dir/errors/inject.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/inject.cpp.o.d"
  "/root/repo/src/errors/mse.cpp" "src/CMakeFiles/hltg.dir/errors/mse.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/mse.cpp.o.d"
  "/root/repo/src/errors/redundancy.cpp" "src/CMakeFiles/hltg.dir/errors/redundancy.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/redundancy.cpp.o.d"
  "/root/repo/src/errors/report.cpp" "src/CMakeFiles/hltg.dir/errors/report.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/errors/report.cpp.o.d"
  "/root/repo/src/gatenet/eval3.cpp" "src/CMakeFiles/hltg.dir/gatenet/eval3.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/gatenet/eval3.cpp.o.d"
  "/root/repo/src/gatenet/gate_builder.cpp" "src/CMakeFiles/hltg.dir/gatenet/gate_builder.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/gatenet/gate_builder.cpp.o.d"
  "/root/repo/src/gatenet/gatenet.cpp" "src/CMakeFiles/hltg.dir/gatenet/gatenet.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/gatenet/gatenet.cpp.o.d"
  "/root/repo/src/gatenet/levelize.cpp" "src/CMakeFiles/hltg.dir/gatenet/levelize.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/gatenet/levelize.cpp.o.d"
  "/root/repo/src/isa/asm.cpp" "src/CMakeFiles/hltg.dir/isa/asm.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/asm.cpp.o.d"
  "/root/repo/src/isa/disasm.cpp" "src/CMakeFiles/hltg.dir/isa/disasm.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/disasm.cpp.o.d"
  "/root/repo/src/isa/encode.cpp" "src/CMakeFiles/hltg.dir/isa/encode.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/encode.cpp.o.d"
  "/root/repo/src/isa/isa.cpp" "src/CMakeFiles/hltg.dir/isa/isa.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/isa.cpp.o.d"
  "/root/repo/src/isa/spec_sim.cpp" "src/CMakeFiles/hltg.dir/isa/spec_sim.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/spec_sim.cpp.o.d"
  "/root/repo/src/isa/testcase_io.cpp" "src/CMakeFiles/hltg.dir/isa/testcase_io.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/isa/testcase_io.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/hltg.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/check.cpp" "src/CMakeFiles/hltg.dir/netlist/check.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/check.cpp.o.d"
  "/root/repo/src/netlist/costate.cpp" "src/CMakeFiles/hltg.dir/netlist/costate.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/costate.cpp.o.d"
  "/root/repo/src/netlist/dot.cpp" "src/CMakeFiles/hltg.dir/netlist/dot.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/dot.cpp.o.d"
  "/root/repo/src/netlist/eval.cpp" "src/CMakeFiles/hltg.dir/netlist/eval.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/eval.cpp.o.d"
  "/root/repo/src/netlist/module_kind.cpp" "src/CMakeFiles/hltg.dir/netlist/module_kind.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/module_kind.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/hltg.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/scoap.cpp" "src/CMakeFiles/hltg.dir/netlist/scoap.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/netlist/scoap.cpp.o.d"
  "/root/repo/src/sim/cosim.cpp" "src/CMakeFiles/hltg.dir/sim/cosim.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/cosim.cpp.o.d"
  "/root/repo/src/sim/diff_debug.cpp" "src/CMakeFiles/hltg.dir/sim/diff_debug.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/diff_debug.cpp.o.d"
  "/root/repo/src/sim/proc_sim.cpp" "src/CMakeFiles/hltg.dir/sim/proc_sim.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/proc_sim.cpp.o.d"
  "/root/repo/src/sim/schedule.cpp" "src/CMakeFiles/hltg.dir/sim/schedule.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/schedule.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/hltg.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/vcd.cpp" "src/CMakeFiles/hltg.dir/sim/vcd.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/sim/vcd.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/hltg.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/util/log.cpp.o.d"
  "/root/repo/src/util/logic3.cpp" "src/CMakeFiles/hltg.dir/util/logic3.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/util/logic3.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/hltg.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/hltg.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
