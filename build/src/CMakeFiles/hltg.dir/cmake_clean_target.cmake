file(REMOVE_RECURSE
  "libhltg.a"
)
