file(REMOVE_RECURSE
  "CMakeFiles/error_campaign.dir/error_campaign.cpp.o"
  "CMakeFiles/error_campaign.dir/error_campaign.cpp.o.d"
  "error_campaign"
  "error_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
