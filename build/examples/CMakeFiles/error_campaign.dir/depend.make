# Empty dependencies file for error_campaign.
# This may be replaced when dependencies are built.
