# Empty dependencies file for hazard_explorer.
# This may be replaced when dependencies are built.
