file(REMOVE_RECURSE
  "CMakeFiles/hazard_explorer.dir/hazard_explorer.cpp.o"
  "CMakeFiles/hazard_explorer.dir/hazard_explorer.cpp.o.d"
  "hazard_explorer"
  "hazard_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hazard_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
