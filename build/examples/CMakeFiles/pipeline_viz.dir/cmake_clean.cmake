file(REMOVE_RECURSE
  "CMakeFiles/pipeline_viz.dir/pipeline_viz.cpp.o"
  "CMakeFiles/pipeline_viz.dir/pipeline_viz.cpp.o.d"
  "pipeline_viz"
  "pipeline_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
