# Empty dependencies file for bench_pipeframe.
# This may be replaced when dependencies are built.
