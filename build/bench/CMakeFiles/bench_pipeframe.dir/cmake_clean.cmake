file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeframe.dir/bench_pipeframe.cpp.o"
  "CMakeFiles/bench_pipeframe.dir/bench_pipeframe.cpp.o.d"
  "bench_pipeframe"
  "bench_pipeframe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeframe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
