file(REMOVE_RECURSE
  "CMakeFiles/bench_relax.dir/bench_relax.cpp.o"
  "CMakeFiles/bench_relax.dir/bench_relax.cpp.o.d"
  "bench_relax"
  "bench_relax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_relax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
