# Empty dependencies file for bench_relax.
# This may be replaced when dependencies are built.
