file(REMOVE_RECURSE
  "CMakeFiles/bench_random.dir/bench_random.cpp.o"
  "CMakeFiles/bench_random.dir/bench_random.cpp.o.d"
  "bench_random"
  "bench_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
