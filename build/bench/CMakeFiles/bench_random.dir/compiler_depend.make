# Empty compiler generated dependencies file for bench_random.
# This may be replaced when dependencies are built.
