file(REMOVE_RECURSE
  "CMakeFiles/bench_errmodels.dir/bench_errmodels.cpp.o"
  "CMakeFiles/bench_errmodels.dir/bench_errmodels.cpp.o.d"
  "bench_errmodels"
  "bench_errmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_errmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
