# Empty dependencies file for bench_errmodels.
# This may be replaced when dependencies are built.
